(** High-level entry point: boots a simulated machine with storage
    devices and a LabStor Runtime, ready for stacks to be mounted and
    clients to connect. This is the API the examples and benchmarks
    use. *)

type t

val boot :
  ?ncores:int ->
  ?nworkers:int ->
  ?policy:Lab_runtime.Orchestrator.policy ->
  ?costs:Lab_sim.Costs.t ->
  ?devices:Lab_device.Profile.kind list ->
  ?default_device:Lab_device.Profile.kind ->
  ?seed:int ->
  ?workers_busy_poll:bool ->
  ?worker_batch_size:int ->
  ?worker_max_inflight:int ->
  ?fault_rates:Lab_sim.Fault.rates ->
  ?fault_script:Lab_sim.Fault.event list ->
  ?trace_sample:int ->
  ?trace_path:string ->
  ?metrics_path:string ->
  ?profile_period:float ->
  ?profile_path:string ->
  ?lvm_rebuild_rate_mbps:float ->
  ?qos_quantum_kb:int ->
  ?qos_window_kb:int ->
  ?qos_bypass_kb:int ->
  ?slo_name:string ->
  ?slo_p99_target_us:float ->
  ?slo_floor_kops:float ->
  ?slo_error_budget:float ->
  ?slo_window_ms:float ->
  ?exemplar_k:int ->
  ?exemplar_tail_us:float ->
  ?exemplar_path:string ->
  ?blackbox_cap:int ->
  ?blackbox_path:string ->
  unit ->
  t
(** Defaults: 24 cores, 4 workers, round-robin orchestration, one NVMe
    device (plus any others listed). Backends are named after their
    device kind in lowercase ("nvme", "ssd", "hdd", "pmem"); listing a
    kind more than once boots distinct instances — mirror legs — named
    "nvme", "nvme2", "nvme3", … (see {!devices} / {!device_by_name}).
    [worker_batch_size] (default 1) bounds how many requests a worker
    drains per queue per cross-core pull; [worker_max_inflight]
    (default 16) bounds each worker's asynchronous window; see
    {!Lab_runtime.Worker}. [lvm_rebuild_rate_mbps] overrides the
    volume-manager resilver rate cap
    ({!Lab_runtime.Runtime.config.lvm_rebuild_rate_mbps}).

    If [fault_rates] or [fault_script] is given, every booted device
    gets a deterministic fault plan derived from [seed] (one independent
    stream per device); otherwise devices are fault-free.

    [trace_sample] (default 0 = off) traces every request whose id is a
    multiple of N through the span tracer; [trace_path] and
    [metrics_path] are where {!export} writes the Chrome trace-event
    JSON and the JSONL metrics snapshot. Device counters and service
    percentiles are registered as read-through gauges under
    ["device.<backend>."].

    [profile_period] (ns; default 0 = off) enables the continuous
    profiler: a sampler rides the engine clock at that period recording
    per-core busy fraction, worker utilization/in-flight, QP and device
    queue occupancy, and cache dirty backlog; [profile_path] is where
    {!export} writes the profile JSON (timeline + flamegraph + tail
    attribution). Combine with [trace_sample] for the span half.

    [qos_quantum_kb] / [qos_window_kb] / [qos_bypass_kb] override the
    multi-tenant QoS table's DRR quantum, dispatch window and
    latency-class bypass threshold
    ({!Lab_runtime.Runtime.config.qos_quantum_kb} etc.); the table is
    inert until {!register_tenant} is called.

    [slo_p99_target_us] / [slo_floor_kops] configure a runtime-wide
    service-level objective over client latency (see
    {!Lab_runtime.Runtime.slo}): requests slower than the target — and
    burn windows serving fewer ops than the floor — consume error
    budget ([slo_error_budget], default 1%) tracked per
    [slo_window_ms] window, exported as the
    [slo.<slo_name>.budget_remaining] / [.burn_rate] gauges. Leaving
    both at their 0 defaults builds no SLO object at all, keeping the
    request path byte-identical to a platform without SLO support.

    [exemplar_k] (default 0 = off) keeps the [k] slowest completed
    requests as tail exemplars with full per-stage anatomy; a request
    is promoted when its latency clears [exemplar_tail_us] (or, at the
    0.0 default, the live corrected p99 of client latency — the store
    adapts as load shifts). [blackbox_cap] (default 0 = off) turns on
    the always-on flight recorder: a ring of the last [blackbox_cap]
    encoded events, dumped when a trigger fires (injected fault,
    client-visible ENODEV/ETIMEDOUT, deadline miss, SLO burn rate
    above 1). {!export} writes the stores to [exemplar_path] /
    [blackbox_path]. Both features cost zero engine events and zero
    simulated time, so enabling them never perturbs a run's schedule. *)

val machine : t -> Lab_sim.Machine.t

val runtime : t -> Lab_runtime.Runtime.t

val device : t -> Lab_device.Profile.kind -> Lab_device.Device.t
(** The first booted device of that kind.
    @raise Not_found if the kind was not booted. *)

val devices : t -> (string * Lab_device.Device.t) list
(** Every booted device instance with its name, in boot order. *)

val device_by_name : t -> string -> Lab_device.Device.t
(** Looks an instance up by name ("nvme", "nvme2", …).
    @raise Invalid_argument on an unknown name. *)

val fault_plan : t -> Lab_device.Profile.kind -> Lab_sim.Fault.t option
(** The device's installed fault plan; [None] when booted without
    faults. Per-category injection counts surface as
    ["fault.<backend>.<category>"] counters in {!metrics} snapshots
    (synced by {!export}); the live total is the
    ["fault.<backend>.injected_total"] gauge. *)

val backend : t -> Lab_device.Profile.kind -> Lab_mods.Mods_env.backend

val mount : t -> string -> (Lab_core.Stack.t, string) result
(** Mounts a LabStack from its YAML specification text. *)

val mount_exn : t -> string -> Lab_core.Stack.t

val register_tenant :
  t ->
  uid:int ->
  ?weight:int ->
  ?rate_mbps:float ->
  ?burst_kb:int ->
  ?qcap:int ->
  unit ->
  Lab_ipc.Tenant.tenant
(** Registers a QoS tenant keyed by client uid — see
    {!Lab_runtime.Runtime.register_tenant}. Register before connecting
    the tenant's clients: the uid-to-tenant lookup happens at
    {!client} connect time. *)

val tenant_for : t -> uid:int -> Lab_ipc.Tenant.tenant option

val client :
  t ->
  ?pid:int ->
  ?uid:int ->
  ?retry_policy:Lab_runtime.Client.retry_policy ->
  thread:int ->
  unit ->
  Lab_runtime.Client.t
(** Connects a client; must run inside a simulated process (e.g. within
    {!go}). Fresh pids are assigned when omitted. A uid registered via
    {!register_tenant} makes the client a metered tenant: token-bucket
    admission applies (refusals surface as retryable EAGAIN) and its
    requests pass the scheduler's DRR dispatch stage. *)

val go : t -> (unit -> 'a) -> 'a
(** [go t f] runs [f] as a simulated process to completion and returns
    its result, then freezes the platform's background processes. Call
    from outside the engine (top level of an example). *)

val now : t -> float
(** Virtual time, ns. *)

val tracer : t -> Lab_obs.Trace.t
(** The runtime's span tracer (shortcut for
    [Lab_runtime.Runtime.tracer (runtime t)]). *)

val metrics : t -> Lab_obs.Metrics.t
(** The runtime's metrics registry, holding queue-pair, worker, module,
    client, device and fault instruments. *)

val profile_json : t -> string
(** The profile artifact as a string:
    [{"timeline": <sampler series>, "spans": <flamegraph + tail>}].
    Byte-stable: two same-seed runs produce identical bytes. The
    timeline half is empty when the platform booted without
    [profile_period]; the spans half is empty without [trace_sample]. *)

val export :
  ?trace_path:string -> ?metrics_path:string -> ?profile_path:string ->
  ?exemplar_path:string -> ?blackbox_path:string ->
  t -> unit
(** Writes the observability artifacts: the Chrome trace-event JSON
    (loadable in Perfetto / [chrome://tracing]), the profile JSON
    ({!profile_json}), the tail-exemplar store, the flight-recorder
    black box, and the JSONL metrics snapshot. Explicit arguments
    override the paths given to {!boot}; a file is skipped when no
    path is configured for it (exemplar/black-box files additionally
    require the feature to have been enabled at boot). Missing parent
    directories are created. Fault counters are synced from the
    devices' fault plans first. *)
