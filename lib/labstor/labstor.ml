(** LabStor in OCaml — top-level facade.

    Re-exports every layer of the platform under one roof:

    - {!Sim}: discrete-event simulation substrate (engine, CPU model,
      cost constants, statistics)
    - {!Device}: storage device models (HDD / SATA SSD / NVMe / PMEM)
    - {!Ipc}: shared-memory regions and queue pairs
    - {!Kernel}: simulated Linux kernel (block layer, page cache,
      ext4/XFS/F2FS models, POSIX/AIO/libaio/io_uring APIs)
    - {!Core}: the LabMod framework, Module Registry/Manager, LabStack
      specs and Namespace
    - {!Mods}: stock LabMods (LabFS, LabKVS, LRU cache, permissions,
      compression, schedulers, drivers)
    - {!Runtime}: workers, Work Orchestrator, client library
    - {!Workloads}: FIO / FxMark / Filebench / LABIOS / PFS generators
    - {!Obs}: span tracer + metrics registry and their exporters
    - {!Platform}: one-call boot + mount + client entry point *)

module Sim = Lab_sim
module Obs = Lab_obs
module Device = Lab_device
module Ipc = Lab_ipc
module Kernel = Lab_kernel
module Core = Lab_core
module Mods = Lab_mods
module Runtime = Lab_runtime
module Workloads = Lab_workloads
module Platform = Platform
