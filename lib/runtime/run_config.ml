open Lab_core

let ( let* ) r f = Result.bind r f

let policy_of_yaml ~nworkers node =
  match node with
  | None -> Ok (Orchestrator.Round_robin nworkers)
  | Some node -> (
      let geti key default =
        Option.value ~default (Option.bind (Yamlite.find node key) Yamlite.get_int)
      in
      let getf key default =
        Option.value ~default
          (Option.bind (Yamlite.find node key) Yamlite.get_float)
      in
      match Option.bind (Yamlite.find node "kind") Yamlite.get_string with
      | Some "static" -> Ok (Orchestrator.Static (geti "workers" nworkers))
      | Some "round_robin" | None ->
          Ok (Orchestrator.Round_robin (geti "workers" nworkers))
      | Some "dynamic" ->
          Ok
            (Orchestrator.Dynamic
               {
                 max_workers = geti "max_workers" nworkers;
                 threshold = getf "threshold" 0.2;
                 lq_cutoff_ns = getf "lq_cutoff_us" 1000.0 *. 1000.0;
               })
      | Some other -> Error (Printf.sprintf "unknown policy kind %S" other))

let of_yaml node =
  let d = Runtime.default_config in
  let geti key default =
    Option.value ~default (Option.bind (Yamlite.find node key) Yamlite.get_int)
  in
  let getf key default =
    Option.value ~default (Option.bind (Yamlite.find node key) Yamlite.get_float)
  in
  let getb key default =
    Option.value ~default (Option.bind (Yamlite.find node key) Yamlite.get_bool)
  in
  let gets key default =
    match Option.bind (Yamlite.find node key) Yamlite.get_string with
    | Some s when s <> "" -> Some s
    | _ -> default
  in
  let nworkers = geti "workers" d.Runtime.nworkers in
  if nworkers <= 0 then Error "workers must be positive"
  else
    let* policy = policy_of_yaml ~nworkers (Yamlite.find node "policy") in
    Ok
      {
        Runtime.nworkers;
        policy;
        admin_period_ns =
          getf "admin_period_us" (d.Runtime.admin_period_ns /. 1000.0) *. 1000.0;
        worker_spin_ns =
          getf "worker_spin_us" (d.Runtime.worker_spin_ns /. 1000.0) *. 1000.0;
        worker_core_base = geti "worker_core_base" d.Runtime.worker_core_base;
        workers_busy_poll = getb "busy_poll" d.Runtime.workers_busy_poll;
        worker_batch_size =
          geti "worker_batch_size" d.Runtime.worker_batch_size;
        worker_max_inflight =
          geti "worker_max_inflight" d.Runtime.worker_max_inflight;
        trace_sample = geti "trace_sample" d.Runtime.trace_sample;
        trace_path = gets "trace_path" d.Runtime.trace_path;
        metrics_path = gets "metrics_path" d.Runtime.metrics_path;
        profile_period_ns =
          getf "profile_period_us"
            (d.Runtime.profile_period_ns /. 1000.0)
          *. 1000.0;
        profile_path = gets "profile_path" d.Runtime.profile_path;
        lvm_rebuild_rate_mbps =
          getf "lvm_rebuild_rate_mbps" d.Runtime.lvm_rebuild_rate_mbps;
        qos_quantum_kb = geti "qos_quantum_kb" d.Runtime.qos_quantum_kb;
        qos_window_kb = geti "qos_window_kb" d.Runtime.qos_window_kb;
        qos_bypass_kb = geti "qos_bypass_kb" d.Runtime.qos_bypass_kb;
        tenant_weight = geti "tenant_weight" d.Runtime.tenant_weight;
        tenant_rate_mbps = getf "tenant_rate_mbps" d.Runtime.tenant_rate_mbps;
        tenant_burst_kb = geti "tenant_burst_kb" d.Runtime.tenant_burst_kb;
        tenant_qcap = geti "tenant_qcap" d.Runtime.tenant_qcap;
        slo_name =
          Option.value ~default:d.Runtime.slo_name (gets "slo_name" None);
        slo_p99_target_us =
          getf "slo_p99_target_us" d.Runtime.slo_p99_target_us;
        slo_floor_kops = getf "slo_floor_kops" d.Runtime.slo_floor_kops;
        slo_error_budget = getf "slo_error_budget" d.Runtime.slo_error_budget;
        slo_window_ms = getf "slo_window_ms" d.Runtime.slo_window_ms;
        load_rate_kops = getf "load_rate_kops" d.Runtime.load_rate_kops;
        load_injectors = geti "load_injectors" d.Runtime.load_injectors;
        load_queue_cap = geti "load_queue_cap" d.Runtime.load_queue_cap;
        exemplar_k = geti "exemplar_k" d.Runtime.exemplar_k;
        exemplar_tail_us = getf "exemplar_tail_us" d.Runtime.exemplar_tail_us;
        exemplar_path = gets "exemplar_path" d.Runtime.exemplar_path;
        blackbox_cap = geti "blackbox_cap" d.Runtime.blackbox_cap;
        blackbox_path = gets "blackbox_path" d.Runtime.blackbox_path;
      }

let parse text =
  match Yamlite.parse text with
  | exception Yamlite.Parse_error { line; message } ->
      Error (Printf.sprintf "line %d: %s" line message)
  | node -> of_yaml node
