open Lab_sim
open Lab_ipc
open Lab_core
open Lab_device

type config = {
  nworkers : int;
  policy : Orchestrator.policy;
  admin_period_ns : float;
  worker_spin_ns : float;
  worker_core_base : int;
  workers_busy_poll : bool;
  worker_batch_size : int;
  worker_max_inflight : int;
  trace_sample : int;
  trace_path : string option;
  metrics_path : string option;
  exemplar_k : int;
      (* tail-exemplar store slots: 0 (the default) disables retroactive
         stage capture entirely; > 0 captures every request's stages
         into pooled buffers and keeps the K slowest with full anatomy *)
  exemplar_tail_us : float;
      (* fixed promotion threshold (µs); <= 0 (the default) adapts to
         the live client-latency p99 instead *)
  exemplar_path : string option;
      (* where Platform.export writes the exemplar JSON *)
  blackbox_cap : int;
      (* flight-recorder ring capacity (events); 0 (the default)
         disables the recorder — no ring, no triggers, no dumps *)
  blackbox_path : string option;
      (* where Platform.export writes the black-box dump JSON *)
  profile_period_ns : float;  (* sampler period; <= 0 disables profiling *)
  profile_path : string option;
  lvm_rebuild_rate_mbps : float;
      (* volume-manager resilver rate cap (MB/s); bounds how hard a
         background rebuild competes with foreground traffic *)
  qos_quantum_kb : int;
      (* DRR replenishment per visit per unit weight (KiB) *)
  qos_window_kb : int;
      (* outstanding throughput-class byte cap across all tenants (KiB) *)
  qos_bypass_kb : int;
      (* ops at or under this size are latency-class and skip the DRR
         window (KiB; matches the device's urgent-transfer threshold) *)
  tenant_weight : int;  (* default registration weight *)
  tenant_rate_mbps : float;  (* default token-bucket rate; 0 = uncapped *)
  tenant_burst_kb : int;  (* default token-bucket burst (KiB) *)
  tenant_qcap : int;  (* default outstanding-op cap per tenant *)
  slo_name : string;  (* SLO gauge prefix: slo.<name>.* *)
  slo_p99_target_us : float;
      (* client-latency objective (µs); observations over it burn error
         budget. <= 0 (with no floor) means no SLO object exists at all
         and the request path stays byte-identical to a build without
         SLO support *)
  slo_floor_kops : float;
      (* throughput floor (kops/s): windows serving less than this burn
         budget for the unserved demand; 0 = no floor *)
  slo_error_budget : float;  (* allowed bad fraction (default 1%) *)
  slo_window_ms : float;  (* burn-rate window (simulated ms) *)
  load_rate_kops : float;
      (* default offered arrival rate for the open-loop load harness *)
  load_injectors : int;  (* injector pool size (concurrent senders) *)
  load_queue_cap : int;
      (* pending-arrival backlog cap; arrivals past it are shed and
         counted as drops rather than queued without bound *)
}

let default_config =
  {
    nworkers = 4;
    policy = Orchestrator.Round_robin 4;
    admin_period_ns = 1e6;
    worker_spin_ns = 5000.0;
    worker_core_base = 0;
    workers_busy_poll = false;
    worker_batch_size = 1;
    worker_max_inflight = 16;
    trace_sample = 0;
    trace_path = None;
    metrics_path = None;
    exemplar_k = 0;
    exemplar_tail_us = 0.0;
    exemplar_path = None;
    blackbox_cap = 0;
    blackbox_path = None;
    profile_period_ns = 0.0;
    profile_path = None;
    lvm_rebuild_rate_mbps = 400.0;
    qos_quantum_kb = 64;
    qos_window_kb = 128;
    qos_bypass_kb = 16;
    tenant_weight = 1;
    tenant_rate_mbps = 0.0;
    tenant_burst_kb = 256;
    tenant_qcap = 64;
    slo_name = "client";
    slo_p99_target_us = 0.0;
    slo_floor_kops = 0.0;
    slo_error_budget = 0.01;
    slo_window_ms = 1.0;
    load_rate_kops = 50.0;
    load_injectors = 16;
    load_queue_cap = 4096;
  }

type qstat = {
  mutable ewma : float;
  mutable last_total : int;
  mutable arrivals_ewma : float;  (* smoothed submissions per epoch *)
}

type t = {
  machine : Machine.t;
  reg : Registry.t;
  ns : Namespace.t;
  ipc_mgr : Request.t Ipc_manager.t;
  mm : Module_manager.t;
  pool : Worker.t array;
  cfg : config;
  qstats : (int, qstat) Hashtbl.t;
  mutable req_counter : int;
  admin_thread : int;
  mutable live : bool;
  mutable probe : Exec.probe option;
  repo_mgr : Repo.t;
  tracer : Lab_obs.Trace.t;
  metrics : Lab_obs.Metrics.t;
  service_hist : Lab_obs.Metrics.histogram;
  timeseries : Lab_obs.Timeseries.t option;
  qos : Tenant.t;
  slo : Lab_obs.Latrec.Slo.t option;
      (* runtime-wide SLO over client latency; [None] (the default)
         means the request path makes exactly one option check *)
  exemplars : Lab_obs.Exemplar.t option;
      (* tail-exemplar store the tracer offers every finished flow to;
         [None] = no retroactive capture *)
  blackbox : Lab_obs.Flightrec.t option;
      (* always-on flight recorder; [None] = every hook is one option
         check *)
}

let machine t = t.machine

let registry t = t.reg

let namespace t = t.ns

let ipc t = t.ipc_mgr

let module_manager t = t.mm

let workers t = t.pool

let config t = t.cfg

let tracer t = t.tracer

let metrics t = t.metrics

let timeseries t = t.timeseries

let qos t = t.qos

let slo t = t.slo

let exemplars t = t.exemplars

let blackbox t = t.blackbox

let next_request_id t =
  t.req_counter <- t.req_counter + 1;
  t.req_counter

(* Worker threads get ids far above client thread ids so CPU affinity
   never collides by accident. *)
let worker_thread_base = 10_000

let admin_thread_id = 9_999

(* Loading new LabMod code: the binary is page-faulted in from the
   default backend (4 KiB reads — the dominant cost Table I observes),
   then linked. *)
let make_load_code machine (backend : Lab_mods.Mods_env.backend) =
  let link_cpu_ns = 2.5e6 in
  fun ~thread ~bytes ->
    let pages = Stdlib.max 1 (bytes / 4096) in
    let dev = backend.Lab_mods.Mods_env.device in
    let nq = Device.n_hw_queues dev in
    for page = 0 to pages - 1 do
      ignore
        (Device.submit_wait dev ~hctx:(thread mod nq) ~kind:Device.Read
           ~lba:(1_000_000 + (page * 8)) ~bytes:4096)
    done;
    Machine.compute machine ~thread link_cpu_ns

let exec_request t ~thread ?probe req =
  let probe = match probe with Some _ -> probe | None -> t.probe in
  match Namespace.stack_by_id t.ns req.Request.stack_id with
  | None ->
      Request.Failed (Printf.sprintf "unknown stack id %d" req.Request.stack_id)
  | Some stack -> Exec.run t.machine ~registry:t.reg ~stack ~thread ?probe req

let set_probe t probe = t.probe <- probe

let qstat_of t qp_id =
  match Hashtbl.find_opt t.qstats qp_id with
  | Some s -> s
  | None ->
      let s = { ewma = 2000.0; last_total = 0; arrivals_ewma = 0.0 } in
      Hashtbl.replace t.qstats qp_id s;
      s

let note_service t ~qp_id ~service_ns =
  let s = qstat_of t qp_id in
  s.ewma <- (0.8 *. s.ewma) +. (0.2 *. service_ns);
  Lab_obs.Metrics.observe t.service_hist service_ns

(* Dispatch-time estimate (EstProcessingTime over the request's stack):
   raises the queue's expected service time immediately; later
   completions pull it back if the estimate was pessimistic. *)
let estimate_request t req =
  match Namespace.stack_by_id t.ns req.Request.stack_id with
  | None -> 0.0
  | Some stack ->
      List.fold_left
        (fun acc (m : Labmod.t) ->
          acc +. m.Labmod.ops.Labmod.est_processing_time m req)
        0.0
        (Stack.mods stack t.reg)

let prime_estimate t ~qp_id req =
  let s = qstat_of t qp_id in
  s.ewma <- Float.max s.ewma (estimate_request t req)

let create machine ?(config = default_config) ~backends ~default_backend () =
  let reg = Registry.create () in
  let metrics = Lab_obs.Metrics.create () in
  (* Tail-exemplar store: built only when slots are configured. Its
     promotion threshold is either the fixed [exemplar_tail_us] floor
     or (at the 0.0 default) the store's own self-adaptive corrected
     p99 over every offered latency — re-read on each completion, so
     the store adapts as the run's tail moves. *)
  let exemplars =
    if config.exemplar_k > 0 then
      if config.exemplar_tail_us > 0.0 then begin
        let fixed = config.exemplar_tail_us *. 1e3 in
        Some
          (Lab_obs.Exemplar.create
             ~threshold:(fun () -> fixed)
             ~k:config.exemplar_k ())
      end
      else Some (Lab_obs.Exemplar.create ~k:config.exemplar_k ())
    else None
  in
  let tracer =
    Lab_obs.Trace.create ~sample:config.trace_sample ?exemplars ()
  in
  (* Flight recorder: a preallocated ring, always on once configured;
     record/trigger hooks all over the runtime reduce to one option
     check when [blackbox_cap] is 0. *)
  let blackbox =
    if config.blackbox_cap > 0 then
      Some (Lab_obs.Flightrec.create ~cap:config.blackbox_cap ())
    else None
  in
  (* The continuous-profiling sampler. Created only when a period is
     configured: with profiling off, no Timeseries exists, no probes are
     registered and no Engine tick hook is installed — the run is
     byte-identical to one built before this feature existed. *)
  let timeseries =
    if config.profile_period_ns > 0.0 then
      Some (Lab_obs.Timeseries.create ~period:config.profile_period_ns ())
    else None
  in
  (* Multi-tenant QoS table: always built (it is inert until a tenant
     registers — requests without a tenant stamp skip the dispatch
     gate entirely), shared by the scheduler instances and the
     client-side admission path. *)
  let qos =
    Tenant.create
      ~quantum_bytes:(1024 * config.qos_quantum_kb)
      ~window_bytes:(1024 * config.qos_window_kb)
      ~bypass_bytes:(1024 * config.qos_bypass_kb)
      ()
  in
  (* The runtime-wide SLO: built only when an objective is configured,
     so the default request path never even allocates the object. *)
  let slo =
    if config.slo_p99_target_us > 0.0 || config.slo_floor_kops > 0.0 then
      Some
        (Lab_obs.Latrec.Slo.create ~reg:metrics ~name:config.slo_name
           ~p99_target_ns:(config.slo_p99_target_us *. 1e3)
           ~floor_ops_s:(config.slo_floor_kops *. 1e3)
           ~error_budget:config.slo_error_budget
           ~window_ns:(config.slo_window_ms *. 1e6)
           ())
    else None
  in
  (* The flight recorder rides SLO window rolls: every closed window is
     logged, and a window burning past its budget (burn > 1) triggers a
     black-box dump. *)
  (match (slo, blackbox) with
  | Some s, Some bb ->
      Lab_obs.Latrec.Slo.set_on_roll s (fun ~now ~burn ->
          Lab_obs.Flightrec.record bb Lab_obs.Flightrec.Slo_roll ~now
            ~arg:(Stdlib.int_of_float (burn *. 1000.0))
            ();
          if burn > 1.0 then
            Lab_obs.Flightrec.trigger bb ~reason:"slo_burn" ~now)
  | _ -> ());
  Lab_mods.Mods_env.install reg ~machine ~backends ~default_backend
    ~nworkers:config.nworkers
    ~lvm_rebuild_rate_mbps:config.lvm_rebuild_rate_mbps ~metrics ?timeseries
    ~qos ?blackbox;
  let default =
    match List.assoc_opt default_backend backends with
    | Some b -> b
    | None -> invalid_arg "Runtime.create: unknown default backend"
  in
  let rec t =
    lazy
      (let exec ~thread req = exec_request (Lazy.force t) ~thread req in
       let qstat ~qp_id ~service_ns =
         note_service (Lazy.force t) ~qp_id ~service_ns
       in
       let qprime ~qp_id req = prime_estimate (Lazy.force t) ~qp_id req in
       let pool =
         Array.init config.nworkers (fun i ->
             let thread = worker_thread_base + i in
             let core =
               (config.worker_core_base + i) mod Cpu.ncores machine.Machine.cpu
             in
             Cpu.pin machine.Machine.cpu ~thread ~core;
             Worker.create machine ~id:i ~thread ~exec ~qstat ~qprime
               ~spin_ns:config.worker_spin_ns ~busy_poll:config.workers_busy_poll
               ~batch_size:config.worker_batch_size
               ~max_inflight:config.worker_max_inflight ?blackbox ())
       in
       {
         machine;
         reg;
         ns = Namespace.create ();
         ipc_mgr = Ipc_manager.create ~metrics ?timeseries machine.Machine.engine;
         mm =
           Module_manager.create machine reg
             ~load_code:(make_load_code machine default);
         pool;
         cfg = config;
         qstats = Hashtbl.create 64;
         req_counter = 0;
         admin_thread = admin_thread_id;
         live = true;
         probe = None;
         repo_mgr = Repo.create ~runtime_uid:0 ();
         tracer;
         metrics;
         service_hist = Lab_obs.Metrics.histogram ~reg:metrics "runtime.service_ns";
         timeseries;
         qos;
         slo;
         exemplars;
         blackbox;
       })
  in
  let t = Lazy.force t in
  (* Worker activity is maintained by the Worker structs themselves;
     expose it as read-through gauges rather than duplicating state. *)
  Array.iter
    (fun w ->
      let name k = Printf.sprintf "runtime.worker%d.%s" (Worker.id w) k in
      Lab_obs.Metrics.gauge_fn metrics (name "processed") (fun () ->
          Stdlib.float_of_int (Worker.processed w));
      Lab_obs.Metrics.gauge_fn metrics (name "active_ns") (fun () ->
          Worker.active_ns w))
    t.pool;
  (* Profiling probes + the sampler's clock hook. Each utilization probe
     differences a cumulative counter against its previous sample, so
     the series reads as a per-interval fraction rather than a
     cumulative ramp; the closures' refs are advanced only by the
     deterministic tick, so the series is deterministic too. *)
  (match timeseries with
  | Some ts ->
      let period = config.profile_period_ns in
      let frac d = Float.min 1.0 (Float.max 0.0 (d /. period)) in
      let cores_done = Hashtbl.create 8 in
      Array.iteri
        (fun i w ->
          let core =
            (config.worker_core_base + i) mod Cpu.ncores machine.Machine.cpu
          in
          if not (Hashtbl.mem cores_done core) then begin
            Hashtbl.replace cores_done core ();
            let prev_busy = ref 0.0 in
            Lab_obs.Timeseries.add_series ts
              (Printf.sprintf "cpu.core%d.busy_frac" core)
              (fun now ->
                let b = Cpu.busy_ns_upto machine.Machine.cpu core ~now in
                let d = b -. !prev_busy in
                prev_busy := b;
                frac d)
          end;
          let prev_active = ref 0.0 in
          Lab_obs.Timeseries.add_series ts
            (Printf.sprintf "runtime.worker%d.util" (Worker.id w))
            (fun _now ->
              let a = Worker.active_ns w in
              let d = a -. !prev_active in
              prev_active := a;
              frac d);
          Lab_obs.Timeseries.add_series ts
            (Printf.sprintf "runtime.worker%d.inflight" (Worker.id w))
            (fun _now -> Stdlib.float_of_int (Worker.inflight w)))
        t.pool;
      Engine.set_tick machine.Machine.engine ~period (fun now ->
          Lab_obs.Timeseries.tick ts ~now)
  | None -> ());
  t

(* The paper's EstProcessingTime path: ask every LabMod on the queued
   request's stack for its expected processing time, so a queue turns
   computational the moment a heavy request is waiting — before any
   service-time history exists. *)
let estimate_queued t qp =
  match Qp.peek_sq qp with
  | None -> 0.0
  | Some req -> (
      match Namespace.stack_by_id t.ns req.Request.stack_id with
      | None -> 0.0
      | Some stack ->
          List.fold_left
            (fun acc (m : Labmod.t) ->
              acc +. m.Labmod.ops.Labmod.est_processing_time m req)
            0.0
            (Stack.mods stack t.reg))

let queue_loads t =
  List.map
    (fun qp ->
      let s = qstat_of t (Qp.id qp) in
      let total = Qp.total_submitted qp in
      let fresh = Stdlib.float_of_int (total - s.last_total) in
      s.last_total <- total;
      (* Smooth the arrival rate: long-running requests submit less than
         once per epoch, and a zero sample must not erase their load. *)
      s.arrivals_ewma <- (0.7 *. s.arrivals_ewma) +. (0.3 *. fresh);
      {
        Orchestrator.qp;
        est_service_ns = Float.max s.ewma (estimate_queued t qp);
        expected_requests = Float.max s.arrivals_ewma 1.0;
      })
    (Ipc_manager.primary_qps t.ipc_mgr)

let rebalance_now t =
  Orchestrator.rebalance t.cfg.policy ~epoch_ns:t.cfg.admin_period_ns
    ~queues:(queue_loads t) ~workers:t.pool

let all_primary_acked t =
  (* Nudge parked workers so they observe the marks. *)
  Array.iter Worker.wake t.pool;
  List.for_all
    (fun qp -> Qp.mark qp <> Qp.Update_pending)
    (Ipc_manager.primary_qps t.ipc_mgr)

let process_upgrades t =
  Module_manager.process_centralized t.mm ~thread:t.admin_thread
    ~primary_qps:(Ipc_manager.primary_qps t.ipc_mgr)
    ~all_acked:(fun () -> all_primary_acked t)
    ~intermediate_idle:(fun () -> true)
(* Intermediate traffic is synchronous within a worker's request, so a
   worker that acknowledged a mark has no intermediate work in flight. *)

let start t =
  Array.iter Worker.start t.pool;
  Engine.spawn t.machine.Machine.engine (fun () ->
      let rec admin () =
        Engine.wait t.cfg.admin_period_ns;
        if t.live then begin
          process_upgrades t;
          rebalance_now t
        end;
        admin ()
      in
      admin ())

let repo_manager t = t.repo_mgr

let mount_repo t ~name ~owner_uid ~mods =
  Repo.mount_repo t.repo_mgr t.reg ~name ~owner_uid ~mods

let unmount_repo t ~name = Repo.unmount_repo t.repo_mgr t.reg ~name

let mount t spec =
  match Repo.validate_stack_trust t.repo_mgr spec with
  | Error _ as e -> e
  | Ok () ->
      let r = Namespace.mount t.ns t.reg spec in
      rebalance_now t;
      r

let mount_text t text =
  match Stack_spec.parse text with Error _ as e -> e | Ok spec -> mount t spec

let modify_stack_text t text =
  match Stack_spec.parse text with
  | Error _ as e -> e
  | Ok spec -> Namespace.modify_stack t.ns t.reg spec

let modify_mods t upgrade = Module_manager.submit_upgrade t.mm upgrade

let utilization t ~elapsed_ns =
  if elapsed_ns <= 0.0 then 0.0
  else
    Array.fold_left (fun acc w -> acc +. Worker.active_ns w) 0.0 t.pool
    /. (elapsed_ns *. Stdlib.float_of_int (Array.length t.pool))

let reset_worker_stats t = Array.iter Worker.reset_stats t.pool

let requests_processed t =
  Array.fold_left (fun acc w -> acc + Worker.processed w) 0 t.pool

let crash t =
  t.live <- false;
  Array.iter Worker.stop t.pool;
  Ipc_manager.set_online t.ipc_mgr false;
  (* In-flight requests in the Runtime's address space are lost. *)
  List.iter
    (fun qp ->
      let rec drain_sq () =
        match Qp.poll_sq qp with Some _ -> drain_sq () | None -> ()
      in
      let rec drain_cq () =
        match Qp.try_completion qp with Some _ -> drain_cq () | None -> ()
      in
      drain_sq ();
      drain_cq ();
      Qp.wake_all_waiters qp)
    (Ipc_manager.qps t.ipc_mgr)

let restart t =
  t.live <- true;
  Array.iter Worker.resume t.pool;
  Ipc_manager.set_online t.ipc_mgr true;
  rebalance_now t

(* Tenant registration: config defaults apply unless overridden. Each
   tenant gets read-through observability gauges (no state duplicated)
   and, when the profiling sampler exists, timeline probes. *)
let register_tenant t ~ext_id ?weight ?rate_mbps ?burst_kb ?qcap () =
  let c = t.cfg in
  let tn =
    Tenant.register t.qos ~ext_id
      ~weight:(Option.value weight ~default:c.tenant_weight)
      ~rate_mbps:(Option.value rate_mbps ~default:c.tenant_rate_mbps)
      ~burst_bytes:(1024 * Option.value burst_kb ~default:c.tenant_burst_kb)
      ~qcap:(Option.value qcap ~default:c.tenant_qcap)
  in
  let name k = Printf.sprintf "tenant.%d.%s" ext_id k in
  Lab_obs.Metrics.gauge_fn t.metrics (name "p99") (fun () ->
      Lab_obs.Metrics.p99 (Tenant.latency tn));
  Lab_obs.Metrics.gauge_fn t.metrics (name "throughput_bytes") (fun () ->
      Stdlib.float_of_int (Tenant.bytes_done tn));
  Lab_obs.Metrics.gauge_fn t.metrics (name "deficit") (fun () ->
      Tenant.deficit tn);
  Lab_obs.Metrics.gauge_fn t.metrics (name "throttled") (fun () ->
      Stdlib.float_of_int (Tenant.throttled tn));
  (match t.timeseries with
  | Some ts ->
      Lab_obs.Timeseries.add_series ts (name "deficit") (fun _now ->
          Tenant.deficit tn);
      Lab_obs.Timeseries.add_series ts (name "throttled") (fun _now ->
          Stdlib.float_of_int (Tenant.throttled tn));
      Lab_obs.Timeseries.add_series ts (name "queued") (fun _now ->
          Stdlib.float_of_int (Tenant.queued tn))
  | None -> ());
  tn

let tenant_for t ~uid = Tenant.find t.qos ~ext_id:uid
