open Lab_sim
open Lab_core

type probe = uuid:string -> exclusive_ns:float -> unit

let run machine ~registry ~stack ~thread ?probe req =
  let now () = Engine.now machine.Machine.engine in
  let rec run_vertex uuid req =
    match Registry.find registry uuid with
    | None -> Request.Failed (Printf.sprintf "no LabMod instance %S" uuid)
    | Some m ->
        req.Request.hop <- uuid;
        let child_time = ref 0.0 in
        let ctx =
          {
            Labmod.machine;
            thread;
            forward =
              (fun r ->
                let t0 = now () in
                let result = forward uuid r in
                child_time := !child_time +. (now () -. t0);
                result);
            forward_async =
              (fun r on_result ->
                Engine.spawn machine.Machine.engine (fun () ->
                    on_result (forward uuid r)));
          }
        in
        let t0 = now () in
        let result = m.Labmod.ops.Labmod.operate m ctx req in
        (match probe with
        | Some p -> p ~uuid ~exclusive_ns:(now () -. t0 -. !child_time)
        | None -> ());
        result
  and forward uuid r =
    match Stack.next_uuids stack uuid with
    | [] -> Request.Done
    | nexts ->
        List.fold_left (fun _ next -> run_vertex next r) Request.Done nexts
  in
  run_vertex (Stack.entry_uuid stack) req
