open Lab_sim
open Lab_core

type probe = uuid:string -> exclusive_ns:float -> unit

(* Instrumentation reads the simulated clock but never charges compute
   or schedules events, so a traced run's timing is identical to an
   untraced one.  Each module span is attached to the flow carried by
   the request the module actually saw — a derived request (record
   copy) shares its parent's flow, a synthesized one carries none. *)
let mod_span (r : Request.t) ~name ~uuid ~thread ~t0 ~t1 =
  match r.Request.trace with
  | Some fl ->
      Lab_obs.Trace.span fl ~name ~cat:"mod" ~tid:thread ~t0 ~t1
        ~args:[ ("uuid", uuid) ]
  | None -> ()

let run machine ~registry ~stack ~thread ?probe req =
  let now () = Engine.now machine.Machine.engine in
  let rec run_vertex uuid req =
    match Registry.find registry uuid with
    | None -> Request.Failed (Printf.sprintf "no LabMod instance %S" uuid)
    | Some m ->
        req.Request.hop <- uuid;
        let child_time = ref 0.0 in
        let ctx =
          {
            Labmod.machine;
            thread;
            forward =
              (fun r ->
                let t0 = now () in
                let result = forward uuid r in
                child_time := !child_time +. (now () -. t0);
                result);
            forward_async =
              (fun r on_result ->
                Engine.spawn machine.Machine.engine (fun () ->
                    on_result (forward uuid r)));
          }
        in
        let t0 = now () in
        let result = m.Labmod.ops.Labmod.operate m ctx req in
        (match probe with
        | Some p -> p ~uuid ~exclusive_ns:(now () -. t0 -. !child_time)
        | None -> ());
        mod_span req ~name:m.Labmod.name ~uuid ~thread ~t0 ~t1:(now ());
        result
  and forward uuid r =
    match Stack.next_uuids stack uuid with
    | [] -> Request.Done
    | nexts ->
        List.fold_left (fun _ next -> run_vertex next r) Request.Done nexts
  in
  match req.Request.trace with
  | None -> run_vertex (Stack.entry_uuid stack) req
  | Some fl ->
      let t0 = now () in
      let result = run_vertex (Stack.entry_uuid stack) req in
      Lab_obs.Trace.span fl ~name:"module_stack" ~cat:"stage" ~tid:thread ~t0
        ~t1:(now ());
      result
