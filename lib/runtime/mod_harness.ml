open Lab_sim
open Lab_core

type t = {
  m : Machine.t;
  under_test : Labmod.t;
  downstream : Request.t -> Request.result;
  mutable sent : Request.t list;  (* newest first *)
  mutable next_id : int;
}

let create ?(ncores = 4) ?(downstream = fun _ -> Request.Done) make_factory =
  let m = Machine.create ~ncores () in
  {
    m;
    under_test = make_factory m ~uuid:"under-test" ~attrs:[];
    downstream;
    sent = [];
    next_id = 0;
  }

let labmod t = t.under_test

let machine t = t.m

let forwarded t = List.rev t.sent

let clear_forwarded t = t.sent <- []

let run t ?(thread = 0) payload =
  t.next_id <- t.next_id + 1;
  let req =
    Request.make ~id:t.next_id ~pid:1 ~uid:0 ~thread ~stack_id:0
      ~now:(Machine.now t.m) payload
  in
  let forward r =
    t.sent <- r :: t.sent;
    t.downstream r
  in
  let ctx =
    {
      Labmod.machine = t.m;
      thread;
      forward;
      forward_async =
        (fun r on_result ->
          Engine.spawn t.m.Machine.engine (fun () -> on_result (forward r)));
    }
  in
  let result = ref None in
  let t0 = Machine.now t.m in
  Machine.spawn t.m (fun () ->
      result :=
        Some (t.under_test.Labmod.ops.Labmod.operate t.under_test ctx req));
  Machine.run t.m;
  match !result with
  | Some r -> (r, Machine.now t.m -. t0)
  | None -> (Request.Failed "mod harness: module deadlocked", 0.0)
