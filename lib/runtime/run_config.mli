(** Runtime configuration files.

    Trusted users configure the Runtime through a YAML document (the
    paper's deployment model): worker-pool size, work-orchestration
    policy and its parameters, the admin period, and worker polling
    behaviour. Example:

    {v
    workers: 8
    busy_poll: false
    admin_period_us: 1000
    worker_spin_us: 5
    trace_sample: 100       # trace 1-in-N requests (0 = off)
    trace_path: out/trace.json
    metrics_path: out/metrics.jsonl
    profile_period_us: 50   # sampler period (0 = profiling off)
    profile_path: out/profile.json
    slo_p99_target_us: 40   # latency objective (0 = no SLO)
    slo_floor_kops: 100     # throughput floor (0 = none)
    slo_error_budget: 0.01
    slo_window_ms: 1
    load_rate_kops: 50      # open-loop harness defaults
    load_injectors: 16
    load_queue_cap: 4096
    policy:
      kind: dynamic        # static | round_robin | dynamic
      max_workers: 8
      threshold: 0.2
      lq_cutoff_us: 1000
    v} *)

val of_yaml : Lab_core.Yamlite.t -> (Runtime.config, string) result

val parse : string -> (Runtime.config, string) result
(** Missing keys fall back to {!Runtime.default_config}. *)
