(** Runtime workers: processes that drain request queues, execute
    LabStacks, and post completions.

    A worker sweeps its assigned queue pairs; on an empty sweep it spins
    briefly (polling), then parks on its doorbell until a submission
    rings it — modelling the paper's workers that stop busy-waiting
    after an idle period. Awake wall-time is accounted as CPU
    utilization. Workers participate in the centralized upgrade
    protocol by acknowledging queue marks. *)

type t

val create :
  Lab_sim.Machine.t ->
  id:int ->
  thread:int ->
  exec:(thread:int -> Lab_core.Request.t -> Lab_core.Request.result) ->
  ?qstat:(qp_id:int -> service_ns:float -> unit) ->
  ?qprime:(qp_id:int -> Lab_core.Request.t -> unit) ->
  ?spin_ns:float ->
  ?busy_poll:bool ->
  ?batch_size:int ->
  ?max_inflight:int ->
  ?blackbox:Lab_obs.Flightrec.t ->
  unit ->
  t
(** [exec] runs a request through its stack. [qstat] reports observed
    per-queue service times to the orchestrator. [spin_ns] is the idle
    polling budget before parking (default 5000). With [busy_poll] the
    worker never parks while it has assigned queues — it burns its core
    polling, like a statically-configured worker pool; utilization then
    reflects wall time. [batch_size] (default 1) is how many requests
    one sweep may drain from a queue per cross-core pull: the first
    entry pays the full {!Lab_sim.Costs.shmem_cross_core_ns}, the rest
    the {!Lab_sim.Costs.shmem_batch_frac} fraction. Queues are visited
    round-robin, so batching never starves a sibling queue.
    [max_inflight] (default 16, min 1) bounds how many requests the
    worker runs concurrently as coroutines — its asynchronous window;
    a full window parks the worker until a completion frees a slot. *)

val id : t -> int

val thread : t -> int

val start : t -> unit
(** Spawns the worker process. *)

val assign : t -> Lab_core.Request.t Lab_ipc.Qp.t list -> unit
(** Replaces the worker's queue list (orchestrator rebalance) and wakes
    it. An empty list effectively decommissions the worker. *)

val queues : t -> Lab_core.Request.t Lab_ipc.Qp.t list

val doorbell : t -> unit Lab_sim.Waitq.t

val wake : t -> unit

val stop : t -> unit
(** The worker parks permanently at its next sweep (crash simulation). *)

val resume : t -> unit

val parked : t -> bool

val processed : t -> int

val inflight : t -> int
(** Requests currently running as coroutines (the asynchronous window
    occupancy); sampled by the continuous profiler. *)

val active_ns : t -> float
(** Total awake time (processing + polling), the utilization measure. *)

val reset_stats : t -> unit
