(** The LabStor Runtime: warehouse and execution engine of LabStacks.

    Owns the Module Registry, the LabStack Namespace, the IPC Manager,
    the Module Manager, the worker pool, and the admin process that
    periodically processes upgrades and rebalances queues. *)

type config = {
  nworkers : int;  (** worker pool size (upper bound for dynamic policy) *)
  policy : Orchestrator.policy;
  admin_period_ns : float;  (** upgrade poll / rebalance epoch, default 1 ms *)
  worker_spin_ns : float;  (** idle polling budget before a worker sleeps *)
  worker_core_base : int;  (** workers are pinned to cores starting here *)
  workers_busy_poll : bool;
      (** statically-provisioned workers that poll instead of sleeping *)
  worker_batch_size : int;
      (** requests a worker sweep drains per queue per cross-core pull
          (default 1 = unbatched); see {!Worker.create} *)
  worker_max_inflight : int;
      (** per-worker asynchronous window: concurrent requests a worker
          runs as coroutines (default 16, min 1); see {!Worker.create} *)
  trace_sample : int;
      (** span-tracer sampling: trace every request whose id is a
          multiple of this (1 = all, 0 = off, the default) *)
  trace_path : string option;
      (** where {!Platform.export} writes the Chrome trace-event JSON *)
  metrics_path : string option;
      (** where {!Platform.export} writes the JSONL metrics snapshot *)
  exemplar_k : int;
      (** tail-exemplar store slots (default 0 = no retroactive
          capture): when positive, {e every} request's stages are
          recorded into a pooled buffer and the K slowest completions
          are kept with full anatomy — see {!Lab_obs.Exemplar} *)
  exemplar_tail_us : float;
      (** fixed exemplar promotion threshold (µs); [<= 0] (the
          default) adapts to the live client-latency p99 instead *)
  exemplar_path : string option;
      (** where {!Platform.export} writes the exemplar JSON *)
  blackbox_cap : int;
      (** flight-recorder ring capacity in events (default 0 = no
          recorder, every hook is one option check) — see
          {!Lab_obs.Flightrec} *)
  blackbox_path : string option;
      (** where {!Platform.export} writes the black-box dump JSON *)
  profile_period_ns : float;
      (** continuous-profiling sampler period; [<= 0.0] (the default)
          disables the sampler entirely — no probes are registered and
          no clock hook is installed, so a run is indistinguishable
          from one without profiling support *)
  profile_path : string option;
      (** where {!Platform.export} writes the profile JSON (sampler
          timeline + span-based flamegraph and tail attribution) *)
  lvm_rebuild_rate_mbps : float;
      (** default resilver rate cap (MB/s) for {!Lab_mods.Lab_lvm}
          instances — the volume-topology knob bounding how hard a
          background mirror rebuild competes with foreground I/O
          (default 400, overridable per-instance via the stack's
          [rebuild_rate_mbps] attr) *)
  qos_quantum_kb : int;
      (** multi-tenant DRR replenishment per visit per unit weight
          (KiB, default 64) — see {!Lab_ipc.Tenant} *)
  qos_window_kb : int;
      (** cap on outstanding throughput-class bytes across all tenants
          (KiB, default 128) *)
  qos_bypass_kb : int;
      (** ops at or under this size are latency-class and bypass the
          DRR window (KiB, default 16 — the device's urgent-transfer
          threshold) *)
  tenant_weight : int;  (** default {!register_tenant} weight (1) *)
  tenant_rate_mbps : float;
      (** default tenant token-bucket rate (0 = uncapped) *)
  tenant_burst_kb : int;  (** default token-bucket burst (KiB, 256) *)
  tenant_qcap : int;
      (** default per-tenant outstanding-op cap (64); admission refuses
          (EAGAIN) beyond it *)
  slo_name : string;
      (** prefix of the SLO burn gauges ([slo.<name>.budget_remaining],
          [slo.<name>.burn_rate]); default ["client"] *)
  slo_p99_target_us : float;
      (** client-latency objective (µs): requests slower than this burn
          error budget. [<= 0] with no floor (the default) means no SLO
          object is built at all — the request path is byte-identical
          to a build without SLO support *)
  slo_floor_kops : float;
      (** throughput floor (kops/s): a burn window that served fewer
          ops than the floor demanded burns budget for the unserved
          demand; [0] = no floor *)
  slo_error_budget : float;
      (** allowed bad fraction of requests (default 0.01) *)
  slo_window_ms : float;
      (** burn-rate window in simulated milliseconds (default 1) *)
  load_rate_kops : float;
      (** default offered arrival rate (kops/s) for the open-loop load
          harness ({!Lab_workloads.Load}); default 50 *)
  load_injectors : int;
      (** injector pool size: concurrent open-loop senders (default 16,
          matching the device's hardware-queue count) *)
  load_queue_cap : int;
      (** pending-arrival backlog cap (default 4096): arrivals past it
          are shed and counted as drops, keeping a saturated run's
          memory bounded *)
}

val default_config : config

type t

val create :
  Lab_sim.Machine.t ->
  ?config:config ->
  backends:(string * Lab_mods.Mods_env.backend) list ->
  default_backend:string ->
  unit ->
  t
(** Installs the stock LabMods against [backends] and builds the worker
    pool. Call {!start} to spawn workers and the admin process. *)

val machine : t -> Lab_sim.Machine.t

val registry : t -> Lab_core.Registry.t

val namespace : t -> Lab_core.Namespace.t

val ipc : t -> Lab_core.Request.t Lab_ipc.Ipc_manager.t

val module_manager : t -> Lab_core.Module_manager.t

val workers : t -> Worker.t array

val config : t -> config

val tracer : t -> Lab_obs.Trace.t
(** The span tracer every client/worker/module instrumentation point
    emits into; created with the config's [trace_sample]. *)

val metrics : t -> Lab_obs.Metrics.t
(** The metrics registry: queue-pair, worker, module, client and (via
    {!Platform}) device/fault instruments all live here. *)

val timeseries : t -> Lab_obs.Timeseries.t option
(** The continuous-profiling sampler, present iff the config's
    [profile_period_ns] is positive.  Its probes cover per-core busy
    fraction, per-worker utilization and in-flight window occupancy,
    per-QP submission/completion queue depth, and per-cache-instance
    dirty-log depth; {!Platform} adds device queue occupancy. *)

val qos : t -> Lab_ipc.Tenant.t
(** The multi-tenant QoS table. Always present; inert (every request
    skips the dispatch gate) until a tenant is registered. *)

val slo : t -> Lab_obs.Latrec.Slo.t option
(** The runtime-wide client-latency SLO, present iff the config sets a
    latency target or throughput floor. When present, every client
    request feeds it and its error-budget gauges
    ([slo.<name>.budget_remaining], [slo.<name>.burn_rate]) travel with
    {!Platform.export}. *)

val exemplars : t -> Lab_obs.Exemplar.t option
(** The tail-exemplar store, present iff the config's [exemplar_k] is
    positive. Attached to the tracer: every finished request flow is
    offered and the K slowest survive with full stage anatomy. *)

val blackbox : t -> Lab_obs.Flightrec.t option
(** The flight recorder, present iff the config's [blackbox_cap] is
    positive. Client submit/complete/errno/deadline events, worker and
    scheduler park/wake, SLO window rolls and injected faults all
    record into its ring; faults, client-visible ENODEV/ETIMEDOUT,
    deadline misses and burn rates above 1 trigger black-box dumps. *)

val register_tenant :
  t ->
  ext_id:int ->
  ?weight:int ->
  ?rate_mbps:float ->
  ?burst_kb:int ->
  ?qcap:int ->
  unit ->
  Lab_ipc.Tenant.tenant
(** Registers a QoS tenant keyed by client uid (config defaults fill
    omitted parameters) and installs its read-through gauges
    ([tenant.<id>.p99], [.throughput_bytes], [.deficit], [.throttled])
    plus, when profiling is on, timeline probes. Clients connecting
    with that uid are admission-controlled and their ops stamped with
    the tenant's dense index. *)

val tenant_for : t -> uid:int -> Lab_ipc.Tenant.tenant option

val start : t -> unit

val mount_text : t -> string -> (Lab_core.Stack.t, string) result
(** mount.stack: parse a YAML spec and mount it. *)

val mount : t -> Lab_core.Stack_spec.t -> (Lab_core.Stack.t, string) result
(** Validates trust (untrusted LabMods may not run inside the Runtime)
    before inducting the stack into the Namespace. *)

val repo_manager : t -> Lab_core.Repo.t

val mount_repo :
  t ->
  name:string ->
  owner_uid:int ->
  mods:(string * Lab_core.Registry.factory) list ->
  (Lab_core.Repo.trust, string) result
(** mount.repo: installs a LabMod repo (unprivileged; quota applies).
    Repos owned by the Runtime's uid are trusted. *)

val unmount_repo : t -> name:string -> (unit, string) result

val modify_stack_text : t -> string -> (Lab_core.Stack.t, string) result

val modify_mods : t -> Lab_core.Module_manager.upgrade -> unit
(** Submit a live upgrade (processed by the admin within one period). *)

val next_request_id : t -> int

val exec_request :
  t -> thread:int -> ?probe:Exec.probe -> Lab_core.Request.t -> Lab_core.Request.result
(** Executes a request through the stack named by its [stack_id] —
    used by workers (async stacks) and directly by clients of
    synchronous stacks. *)

val set_probe : t -> Exec.probe option -> unit
(** Attaches a per-LabMod timing probe to every request the workers
    execute (the I/O-anatomy instrumentation). *)

val rebalance_now : t -> unit
(** Forced orchestration epoch (also triggered when clients connect). *)

val utilization : t -> elapsed_ns:float -> float
(** Awake-time fraction of the worker pool over the last [elapsed_ns]. *)

val reset_worker_stats : t -> unit

val requests_processed : t -> int

val crash : t -> unit
(** Simulates a Runtime crash: workers stop, the IPC manager goes
    offline; in-flight state in the Runtime's address space is lost. *)

val restart : t -> unit
(** Administrator restart: workers resume, clients blocked in Wait are
    released (they then run StateRepair). *)
