open Lab_sim
open Lab_ipc
open Lab_core
module Trace = Lab_obs.Trace

type t = {
  w_id : int;
  w_thread : int;
  machine : Machine.t;
  bell : unit Waitq.t;
  mutable assigned : Request.t Qp.t list;
  (* Readiness bitmap over [qarr] (= [assigned] as an array, same
     order): bit i set means queue i may need attention — a doorbell
     rang or its mark changed since we last looked. The sweep iterates
     set bits via de Bruijn ctz instead of scanning every queue, so
     thousands of mostly-idle QPs cost the same as a handful; the
     per-queue listeners (one closure each, allocated at [assign] time
     only) keep the bitmap current. *)
  mutable qarr : Request.t Qp.t array;
  mutable listeners : (unit -> unit) array;
  ready : Bitset.t;
  mutable running : bool;
  mutable is_parked : bool;
  mutable awake_since : float;
  mutable active : float;
  mutable done_count : int;
  exec : thread:int -> Request.t -> Request.result;
  qstat : qp_id:int -> service_ns:float -> unit;
  qprime : qp_id:int -> Request.t -> unit;
  spin_ns : float;
  busy_poll : bool;
  batch_size : int;
  mutable inflight : int;
  max_inflight : int;
  (* Batch-dequeue scratch, reused across sweeps so draining allocates
     no list per pass. Slots are reset to [scratch_dummy] after each
     batch so the scratch never pins dispatched requests. *)
  scratch : Request.t array;
  scratch_dummy : Request.t;
  (* Flight recorder: park/wake transitions are recorded so a black-box
     dump shows whether workers were asleep just before a trigger. *)
  blackbox : Lab_obs.Flightrec.t option;
}

let create machine ~id ~thread ~exec ?(qstat = fun ~qp_id:_ ~service_ns:_ -> ())
    ?(qprime = fun ~qp_id:_ _ -> ()) ?(spin_ns = 5000.0) ?(busy_poll = false)
    ?(batch_size = 1) ?(max_inflight = 16) ?blackbox () =
  let batch_size = Stdlib.max 1 batch_size in
  let scratch_dummy =
    Request.make ~id:(-1) ~pid:(-1) ~uid:(-1) ~thread:(-1) ~stack_id:(-1)
      ~now:0.0 (Request.Control 0)
  in
  {
    w_id = id;
    w_thread = thread;
    machine;
    bell = Waitq.create ();
    assigned = [];
    qarr = [||];
    listeners = [||];
    ready = Bitset.create 0;
    running = true;
    is_parked = false;
    awake_since = 0.0;
    active = 0.0;
    done_count = 0;
    exec;
    qstat;
    qprime;
    spin_ns;
    busy_poll;
    batch_size;
    inflight = 0;
    max_inflight = Stdlib.max 1 max_inflight;
    scratch = Array.make batch_size scratch_dummy;
    scratch_dummy;
    blackbox;
  }

let id t = t.w_id

let thread t = t.w_thread

let queues t = t.assigned

let doorbell t = t.bell

let wake t = ignore (Waitq.wake_all t.bell ())

let assign t qps =
  (* Detach our doorbell and readiness listener from queues we lose;
     attach to those we gain. Unordered queues can be shared by several
     workers, so only our own bell/listeners are touched. *)
  List.iter (fun qp -> Qp.remove_doorbell qp t.bell) t.assigned;
  Array.iteri
    (fun i qp -> Qp.remove_ready_listener qp t.listeners.(i))
    t.qarr;
  t.assigned <- qps;
  t.qarr <- Array.of_list qps;
  let n = Array.length t.qarr in
  t.listeners <-
    Array.init n (fun i ->
        let f () = Bitset.set t.ready i in
        f);
  Bitset.resize t.ready n;
  Bitset.clear_all t.ready;
  Array.iteri
    (fun i qp ->
      Qp.add_ready_listener qp t.listeners.(i);
      (* Seed readiness: anything already queued or mid-upgrade must be
         visited without waiting for a fresh doorbell. *)
      if Qp.sq_depth qp > 0 || Qp.mark qp = Qp.Update_pending then
        Bitset.set t.ready i)
    t.qarr;
  List.iter (fun qp -> Qp.add_doorbell qp t.bell) qps;
  wake t

let stop t =
  t.running <- false;
  wake t

let resume t =
  t.running <- true;
  wake t

let parked t = t.is_parked

let processed t = t.done_count

let inflight t = t.inflight

let active_ns t =
  if t.is_parked then t.active
  else t.active +. (Engine.now t.machine.Machine.engine -. t.awake_since)

let reset_stats t =
  t.active <- 0.0;
  t.done_count <- 0;
  if not t.is_parked then t.awake_since <- Engine.now t.machine.Machine.engine

let costs t = t.machine.Machine.costs

(* Each request runs in its own coroutine on the worker's thread: CPU
   bursts serialize on the worker's core, but waits (device I/O,
   downstream LabMods) overlap across requests — the paper's
   asynchronous message passing, which is what lets one worker drive a
   device well beyond 1/latency. [max_inflight] bounds the window.
   [pull_ns] is this request's share of the cross-core cache-line pull,
   paid serially in the polling loop — the worker cannot dequeue the
   next request meanwhile, which is what lets a second worker pick it
   up from a shared (unordered) queue. *)
let process t qp req ~pull_ns =
  t.inflight <- t.inflight + 1;
  (* Tell the orchestrator what this request is expected to cost before
     we start on it (the EstProcessingTime API): a queue turns
     computational at dispatch, not at first completion. *)
  t.qprime ~qp_id:(Qp.id qp) req;
  (* Stage accounting (telescoping): the client's "queue_wait" ends the
     moment the worker dequeues; "dispatch" covers the cross-core pull,
     "complete" the post-stack completion push. Tracing only reads the
     clock — it never charges time or schedules events. *)
  (match req.Request.trace with
  | Some fl ->
      let now = Engine.now t.machine.Machine.engine in
      Trace.close_stage fl ~tid:t.w_thread ~now;
      Trace.open_stage fl ~name:"dispatch" ~now
  | None -> ());
  Machine.compute t.machine ~thread:t.w_thread pull_ns;
  Engine.spawn t.machine.Machine.engine (fun () ->
      let t0 = Engine.now t.machine.Machine.engine in
      (match req.Request.trace with
      | Some fl -> Trace.close_stage fl ~tid:t.w_thread ~now:t0
      | None -> ());
      let result = t.exec ~thread:t.w_thread req in
      req.Request.result <- Some result;
      (match req.Request.trace with
      | Some fl ->
          Trace.open_stage fl ~name:"complete"
            ~now:(Engine.now t.machine.Machine.engine)
      | None -> ());
      t.qstat ~qp_id:(Qp.id qp)
        ~service_ns:(Engine.now t.machine.Machine.engine -. t0);
      Machine.compute t.machine ~thread:t.w_thread (costs t).Costs.shmem_enqueue_ns;
      (* Hand the open "reap" stage to the client before the completion
         push can wake it. *)
      (match req.Request.trace with
      | Some fl ->
          let now = Engine.now t.machine.Machine.engine in
          Trace.close_stage fl ~tid:t.w_thread ~now;
          Trace.open_stage fl ~name:"reap" ~now
      | None -> ());
      Qp.complete qp req;
      t.done_count <- t.done_count + 1;
      t.inflight <- t.inflight - 1;
      (* The worker may have parked on a full window; nudge it. *)
      wake t)

(* One pass over the *ready* queues: up to [batch_size] requests are
   drained per queue per pass, so one cross-core pull covers the whole
   run of adjacent ring slots (the head pays the full transfer, the
   rest the configured fraction). Fairness is round-robin between
   queues — a pass never drains one queue dry before visiting the
   next. The bitmap iteration reads live bits in ascending index
   order, exactly the order the old linear scan visited the queue
   list, and a queue whose bit is clear is one the scan would have
   polled emptily — so skipping it is behaviourally identical, just
   O(ready) instead of O(assigned). A visited queue's bit is cleared
   first and re-set when it still needs attention (budget exhausted,
   leftover ring entries, unacknowledgeable upgrade mark), which lands
   it in the next pass like the old per-pass revisit did. Returns
   whether any request was dispatched. Upgrade marks are acknowledged
   here (marked queues are not drained until the Module Manager
   unmarks them). *)
let sweep t =
  let progress = ref false in
  let i = ref (Bitset.next_set t.ready 0) in
  while !i >= 0 do
    let idx = !i in
    Bitset.clear t.ready idx;
    let qp = Array.unsafe_get t.qarr idx in
    (match Qp.mark qp with
    | Qp.Update_pending ->
        (* Only acknowledge once our in-flight requests retire. (The
           ack's own mark change re-sets our bit; the follow-up visit
           sees Update_acked and goes back to sleep.) *)
        if t.inflight = 0 then Qp.set_mark qp Qp.Update_acked
        else Bitset.set t.ready idx
    | Qp.Update_acked -> ()
    | Qp.Normal ->
        let budget = Stdlib.min t.batch_size (t.max_inflight - t.inflight) in
        if budget > 0 then begin
          let got = Qp.poll_sq_into qp t.scratch budget in
          if got > 0 then begin
            progress := true;
            let c = costs t in
            for i = 0 to got - 1 do
              let req = t.scratch.(i) in
              t.scratch.(i) <- t.scratch_dummy;
              let pull_ns =
                if i = 0 then c.Costs.shmem_cross_core_ns
                else c.Costs.shmem_cross_core_ns *. c.Costs.shmem_batch_frac
              in
              process t qp req ~pull_ns
            done
          end
        end;
        if Qp.sq_depth qp > 0 then Bitset.set t.ready idx);
    i := Bitset.next_set t.ready (idx + 1)
  done;
  !progress

let park t =
  t.active <- t.active +. (Engine.now t.machine.Machine.engine -. t.awake_since);
  t.is_parked <- true;
  let done_before = t.done_count in
  (match t.blackbox with
  | Some bb ->
      Lab_obs.Flightrec.record bb Lab_obs.Flightrec.Park
        ~now:(Engine.now t.machine.Machine.engine)
        ~id:t.w_id ~tag:"worker" ()
  | None -> ());
  let slot = ref None in
  Waitq.park t.bell slot;
  t.is_parked <- false;
  t.awake_since <- Engine.now t.machine.Machine.engine;
  match t.blackbox with
  | Some bb ->
      Lab_obs.Flightrec.record bb Lab_obs.Flightrec.Wake ~now:t.awake_since
        ~id:t.w_id
        ~arg:(t.done_count - done_before)
        ~tag:"worker" ()
  | None -> ()

let start t =
  Engine.spawn t.machine.Machine.engine (fun () ->
      t.awake_since <- Engine.now t.machine.Machine.engine;
      let rec loop () =
        if not t.running then begin
          park t;
          loop ()
        end
        else if sweep t then loop ()
        else if t.busy_poll && t.assigned <> [] then begin
          (* Statically-configured workers never sleep: poll the queue
             set at a coarse interval (the sweep itself costs time). *)
          Engine.wait 2000.0;
          loop ()
        end
        else begin
          (* Idle: spin-poll for a bounded budget, then park. *)
          let deadline =
            Engine.now t.machine.Machine.engine +. t.spin_ns
          in
          let rec spin () =
            if Engine.now t.machine.Machine.engine >= deadline then false
            else begin
              Engine.wait (costs t).Costs.poll_spin_ns;
              if sweep t then true else spin ()
            end
          in
          if not (spin ()) then park t;
          loop ()
        end
      in
      loop ())
