(** LabStor client library.

    Plays the role of the LD_PRELOADed Generic LabMods: GenericFS
    (fd allocation + routing of POSIX calls to the right filesystem
    stack) and GenericKVS (routing of put/get/delete). Paths and keys
    are resolved against the LabStack Namespace by longest prefix.

    For stacks mounted [async], requests travel through shared-memory
    queue pairs to Runtime workers; for [sync] stacks the DAG executes
    directly in the client thread. The library also implements crash
    recovery (Wait detects an offline Runtime, waits for restart, runs
    StateRepair, and retries) and applies decentralized live upgrades at
    request boundaries. *)

type t

exception Runtime_gone
(** Raised when the Runtime stayed offline past the client's
    [recovery_timeout_ns]. Crash recovery works as follows: a client
    that finds the Runtime offline parks until it restarts, runs
    StateRepair on every mounted LabMod and resubmits; if the Runtime
    is still offline after [recovery_timeout_ns] of waiting — it never
    restarted — the request cannot be served by anyone and this
    exception escapes to the application. *)

(** {2 Fault policy} *)

type retry_policy = {
  max_retries : int;  (** additional attempts after the first *)
  base_backoff_ns : float;  (** wait before the first retry *)
  backoff_multiplier : float;  (** growth factor per retry *)
  max_backoff_ns : float;  (** backoff ceiling *)
  jitter : float;
      (** each wait is drawn uniformly from [b ± jitter·b] to decorrelate
          clients retrying in lockstep (seeded, deterministic) *)
  deadline_ns : float;
      (** per-request budget covering every attempt and backoff;
          [infinity] disables it. A miss yields an [ETIMEDOUT] failure
          and is never retried. *)
}

val default_retry_policy : retry_policy
(** 3 retries, 50µs base backoff doubling up to 5ms, 25% jitter, no
    deadline. *)

val connect :
  Runtime.t ->
  pid:int ->
  uid:int ->
  thread:int ->
  ?recovery_timeout_ns:float ->
  ?retry_policy:retry_policy ->
  unit ->
  t
(** Models the UNIX-socket handshake and credential exchange. Must run
    inside a simulated process.

    Transient device failures ([EIO], [ENODEV], [ETORN] — see
    {!Lab_core.Request.is_transient_failure}) are retried per
    [retry_policy] with exponential backoff; an [ENODEV] retry is
    requeued to a different hardware queue (degraded-mode routing),
    [ENODEV] being the offline-device errno as opposed to a retryable
    [EIO] media error. When retries are exhausted the last failure is
    surfaced. *)

val disconnect : t -> unit

val pid : t -> int

val thread : t -> int

(** {2 GenericFS: POSIX interface} *)

val open_file : t -> ?create:bool -> string -> (int, string) result
(** Resolves the path to a stack, forwards the open, allocates an fd. *)

val close : t -> int -> (unit, string) result

val pwrite : t -> fd:int -> off:int -> bytes:int -> (int, string) result

val pread : t -> fd:int -> off:int -> bytes:int -> (int, string) result

val fsync : t -> fd:int -> (unit, string) result

val create : t -> string -> (unit, string) result

val stat : t -> string -> (unit, string) result
(** Existence/attribute lookup (an [open] without fd allocation). *)

val unlink : t -> string -> (unit, string) result

val rename : t -> src:string -> dst:string -> (unit, string) result

(** {2 GenericKVS: key-value interface} *)

val put : t -> key:string -> bytes:int -> (unit, string) result

val get : t -> key:string -> (int, string) result

val delete : t -> key:string -> (unit, string) result

(** {2 Raw block access} *)

val write_block :
  ?stream:int ->
  ?scheduled_at:float ->
  t ->
  mount:string ->
  lba:int ->
  bytes:int ->
  (int, string) result
(** Submits a block write to the stack at [mount] (whose entry LabMod
    must accept block requests, e.g. a scheduler or driver) — the
    direct-to-device path of the scheduler experiments. [stream] tags
    the request with a sequential-access stream id
    ({!Lab_core.Request.t.hint_stream}) so cache LabMods can track
    per-stream readahead; untagged requests are keyed by pid.

    [scheduled_at] is the open-loop arrival process's intended
    injection time ({!Lab_core.Request.t.scheduled_at}): when given,
    the client measures latency (and feeds the runtime SLO, if
    configured) from it instead of from the send, which is the
    coordinated-omission-safe origin. Omitted = closed-loop behavior,
    identical to before the field existed. *)

val read_block :
  ?stream:int ->
  ?scheduled_at:float ->
  t ->
  mount:string ->
  lba:int ->
  bytes:int ->
  (int, string) result

(** {2 Batched block access}

    io_uring-style multi-submit: a batch of requests is pushed into the
    stack's submission ring with a {e single} doorbell ring, amortizing
    the worker wakeup across the batch. Per-entry enqueue time is still
    charged per request. *)

type batch_op = {
  op_kind : Lab_core.Request.io_kind;
  op_lba : int;
  op_bytes : int;
}

val block_batch :
  t -> mount:string -> batch_op list -> ((int, string) result list, string) result
(** Submits the whole batch with one doorbell, awaits every completion,
    and applies the client fault policy per request (retries of
    transient failures go through the single-request path). Results are
    in submission order. On a sync stack the ops simply run back to
    back in the client thread. *)

val submit_batch :
  t -> Lab_core.Stack.t -> Lab_core.Request.payload list -> Lab_core.Request.t list
(** Lower-level primitive: build and push the requests, ring the
    doorbell once, return the in-flight requests in submission order.
    Async stacks only; must run inside a simulated process. *)

val reap_batch : t -> Lab_core.Stack.t -> Lab_core.Request.t list -> Lab_core.Request.result list
(** Awaits the completions of previously submitted requests (in
    submission order), discarding stale completions, failing entries
    still outstanding at the policy deadline with [ETIMEDOUT], and
    transparently resubmitting survivors after a Runtime crash. No
    retry policy is applied to the results. *)

(** {2 Control} *)

val control : t -> mount:string -> int -> (unit, string) result
(** Sends a control message to the stack at [mount] (upgrade tests). *)

(** {2 Process semantics} *)

val fork : t -> new_pid:int -> new_thread:int -> t
(** clone/execve support: the child reconnects and the parent's open
    file descriptors are copied to it (and it inherits the retry
    policy). *)

val open_fd_count : t -> int

(** {2 Fault observability} *)

val retries : t -> int
(** Retry attempts made (one per re-dispatched transient failure). *)

val requeues : t -> int
(** Retries that were steered to a different hardware queue because the
    original queue was offline. *)

val deadline_misses : t -> int
(** Requests abandoned because their deadline passed (waiting on a lost
    command or during backoff). *)

val exhausted_retries : t -> int
(** Requests that kept failing transiently after the last allowed
    retry and were surfaced to the application. *)

val fault_counter_list : t -> (string * int) list
(** The four counters above as labelled pairs, for reporting. *)
