open Lab_sim
open Lab_ipc
open Lab_core
module Metrics = Lab_obs.Metrics
module Trace = Lab_obs.Trace

exception Runtime_gone

(* Client-side fault policy: how hard to try before surfacing a
   transient device failure to the application. *)
type retry_policy = {
  max_retries : int;
  base_backoff_ns : float;
  backoff_multiplier : float;
  max_backoff_ns : float;
  jitter : float;
  deadline_ns : float;
}

let default_retry_policy =
  {
    max_retries = 3;
    base_backoff_ns = 50_000.0;
    backoff_multiplier = 2.0;
    max_backoff_ns = 5e6;
    jitter = 0.25;
    deadline_ns = infinity;
  }

type fault_counters = {
  fc_retries : Metrics.counter;
  fc_requeues : Metrics.counter;
  fc_deadline_misses : Metrics.counter;
  fc_exhausted : Metrics.counter;
}

type t = {
  runtime : Runtime.t;
  mutable conn : Ipc_manager.connection;
  c_pid : int;
  uid : int;
  c_thread : int;
  qp_of_stack : (int, Request.t Qp.t) Hashtbl.t;
  fd_table : (int, string * int) Hashtbl.t;  (* fd -> (path, stack id) *)
  mutable next_fd : int;
  mutable epoch : int;
  recovery_timeout_ns : float;
  policy : retry_policy;
  rng : Rng.t;  (* backoff jitter; independent of every other stream *)
  counters : fault_counters;
  latency_hist : Metrics.histogram;  (* shared "client.latency_ns" *)
  (* Recycled request records: a closed-loop client reuses one record
     per outstanding slot instead of allocating a fresh one per op.
     Requests are released back only where their completion was
     definitely consumed by this client; abandoned attempts (deadline
     miss, crash, stale completion) are never released — the Runtime
     may still hold them, so they are left to the GC. *)
  pool : Request.Pool.t;
  (* QoS tenant this client's uid maps to, resolved once at connect
     time ([None] = unmetered). Every attempt passes token-bucket +
     queue-cap admission (refusals surface as EAGAIN, which the retry
     policy backs off on) and every request is stamped with the
     tenant's dense index for the scheduler's DRR stage. *)
  tenant : Tenant.tenant option;
  (* Flight recorder (shared with the whole runtime; [None] = every
     hook below is one option check). Client submissions, completions,
     errno failures and deadline misses record into it; ENODEV /
     ETIMEDOUT and deadline misses trigger black-box dumps. *)
  bb : Lab_obs.Flightrec.t option;
}

let pid t = t.c_pid

let thread t = t.c_thread

let open_fd_count t = Hashtbl.length t.fd_table

let machine t = Runtime.machine t.runtime

let costs t = (machine t).Machine.costs

let charge t ns = Machine.compute (machine t) ~thread:t.c_thread ns

let connect runtime ~pid ~uid ~thread ?(recovery_timeout_ns = 1e10)
    ?(retry_policy = default_retry_policy) () =
  let conn = Ipc_manager.connect (Runtime.ipc runtime) ~pid ~uid in
  (* Fault counters are per-client (the accessors below promise that),
     so they register under the pid rather than a shared name. *)
  let reg = Runtime.metrics runtime in
  let counter k = Metrics.counter ~reg (Printf.sprintf "client.pid%d.%s" pid k) in
  {
    runtime;
    conn;
    c_pid = pid;
    uid;
    c_thread = thread;
    qp_of_stack = Hashtbl.create 8;
    fd_table = Hashtbl.create 64;
    next_fd = 3;
    epoch = Module_manager.epoch (Runtime.module_manager runtime);
    recovery_timeout_ns;
    policy = retry_policy;
    rng = Rng.create (0x9E3779 lxor (pid * 65599) lxor (thread * 31));
    counters =
      {
        fc_retries = counter "retries";
        fc_requeues = counter "requeues";
        fc_deadline_misses = counter "deadline_misses";
        fc_exhausted = counter "exhausted_retries";
      };
    latency_hist = Metrics.histogram ~reg "client.latency_ns";
    pool = Request.Pool.create ();
    tenant = Runtime.tenant_for runtime ~uid;
    bb = Runtime.blackbox runtime;
  }

let retries t = Metrics.value t.counters.fc_retries

let requeues t = Metrics.value t.counters.fc_requeues

let deadline_misses t = Metrics.value t.counters.fc_deadline_misses

let exhausted_retries t = Metrics.value t.counters.fc_exhausted

let fault_counter_list t =
  [
    ("retries", retries t);
    ("requeues", requeues t);
    ("deadline_misses", deadline_misses t);
    ("exhausted", exhausted_retries t);
  ]

let disconnect t = Ipc_manager.disconnect (Runtime.ipc t.runtime) t.conn

let qp_for_stack t (stack : Stack.t) =
  match Hashtbl.find_opt t.qp_of_stack stack.Stack.id with
  | Some qp -> qp
  | None ->
      let qp =
        Ipc_manager.create_qp (Runtime.ipc t.runtime) t.conn ~role:Qp.Primary
          ~ordering:Qp.Ordered ()
      in
      Hashtbl.replace t.qp_of_stack stack.Stack.id qp;
      (* New primary queue: the Work Orchestrator runs a rebalance, as
         it does whenever a new client connects. *)
      Runtime.rebalance_now t.runtime;
      qp

(* Decentralized upgrades: applied at the next request boundary, paying
   the code-load cost in this client. *)
let apply_decentralized_upgrades t =
  let mm = Runtime.module_manager t.runtime in
  let current = Module_manager.epoch mm in
  if current > t.epoch then begin
    let pending = Module_manager.client_pending_upgrades mm ~since_epoch:t.epoch in
    t.epoch <- current;
    List.iter
      (fun (u : Module_manager.upgrade) ->
        List.iter
          (fun (old_mod : Labmod.t) ->
            let fresh =
              Module_manager.apply_client_upgrade mm ~thread:t.c_thread
                ~local:old_mod u
            in
            Registry.replace (Runtime.registry t.runtime) fresh)
          (Registry.instances_of_name (Runtime.registry t.runtime) u.Module_manager.target))
      pending
  end

let run_state_repair t =
  List.iter
    (fun stack ->
      List.iter
        (fun (m : Labmod.t) -> m.Labmod.ops.Labmod.state_repair m)
        (Stack.mods stack (Runtime.registry t.runtime)))
    (Namespace.stacks (Runtime.namespace t.runtime))

(* Wait for OUR completion. Completions for other request ids are stale
   leftovers of attempts this client abandoned on a deadline miss —
   discard them. A finite deadline is enforced by a watchdog process
   (spawned by the dispatcher) that flushes the queue's waiters at the
   deadline so we wake up and notice. *)
let rec await_completion_or_crash t qp ~req_id ~deadline_abs =
  match Qp.try_completion qp with
  | Some req when req.Request.id = req_id -> Ok req
  | Some _stale -> await_completion_or_crash t qp ~req_id ~deadline_abs
  | None ->
      if Machine.now (machine t) >= deadline_abs then Error `Deadline
      else if Ipc_manager.online (Runtime.ipc t.runtime) then begin
        Qp.wait_completion_event qp;
        await_completion_or_crash t qp ~req_id ~deadline_abs
      end
      else Error `Crashed

(* ---- flight-recorder hooks -----------------------------------------
   Each is one option check when no recorder is configured; recording
   never reads anything but the clock, so it cannot perturb a run. *)

let bb_submit t (req : Request.t) =
  match t.bb with
  | None -> ()
  | Some bb ->
      Lab_obs.Flightrec.record bb Lab_obs.Flightrec.Submit
        ~now:req.Request.submitted_at ~id:req.Request.id ()

(* A settled attempt: ok/failed completions record; a client-visible
   ENODEV (device gone) or ETIMEDOUT (time budget spent) triggers a
   black-box dump. Deadline misses go through [bb_deadline] instead —
   they are their own trigger category. *)
let bb_result t ~id result =
  match t.bb with
  | None -> ()
  | Some bb -> (
      let now = Machine.now (machine t) in
      match Request.errno_of_result result with
      | Some e ->
          Lab_obs.Flightrec.record bb Lab_obs.Flightrec.Errno ~now ~id ~tag:e
            ();
          if e = "ENODEV" then
            Lab_obs.Flightrec.trigger bb ~reason:"errno:ENODEV" ~now
          else if e = "ETIMEDOUT" then
            Lab_obs.Flightrec.trigger bb ~reason:"errno:ETIMEDOUT" ~now
      | None ->
          Lab_obs.Flightrec.record bb Lab_obs.Flightrec.Complete ~now ~id
            ~arg:(if Request.is_ok result then 0 else 1)
            ())

let bb_deadline t ~id =
  match t.bb with
  | None -> ()
  | Some bb ->
      let now = Machine.now (machine t) in
      Lab_obs.Flightrec.record bb Lab_obs.Flightrec.Deadline ~now ~id ();
      Lab_obs.Flightrec.trigger bb ~reason:"deadline_miss" ~now

(* Request construction + LabStack/Module-Registry lookups the Runtime
   would otherwise perform. *)
let sync_dispatch_ns = 800.0

let recover t =
  if
    not
      (Ipc_manager.wait_online (Runtime.ipc t.runtime)
         ~timeout_ns:t.recovery_timeout_ns)
  then raise Runtime_gone;
  run_state_repair t

(* One dispatch of one attempt, transparently handling Runtime crashes
   (resubmitting after repair) and exec-mode differences. A metered
   client charges its tenant's token bucket and outstanding-op cap up
   front — a refusal is an EAGAIN the retry policy backs off on — and
   settles the admission (cap slot back, latency recorded) on every
   exit, including before the crash-recovery resubmission, which is a
   fresh attempt and must re-admit. *)
let rec dispatch_once t (stack : Stack.t) payload ~hint ~stream ~scheduled
    ~deadline_abs =
  apply_decentralized_upgrades t;
  let tenant_bytes = Request.payload_bytes payload in
  let t_attempt = Machine.now (machine t) in
  match t.tenant with
  | Some tn
    when not
           (Tenant.admit (Runtime.qos t.runtime) tn ~bytes:tenant_bytes
              ~now:t_attempt) ->
      Request.failed_errno "EAGAIN"
        (Printf.sprintf "tenant %d admission refused" (Tenant.ext_id tn))
  | tenant ->
  let settle ~ok =
    match tenant with
    | Some tn ->
        Tenant.complete (Runtime.qos t.runtime) tn ~bytes:tenant_bytes
          ~latency_ns:(Machine.now (machine t) -. t_attempt)
          ~ok
    | None -> ()
  in
  let req =
    Request.Pool.acquire t.pool
      ~id:(Runtime.next_request_id t.runtime)
      ~pid:t.c_pid ~uid:t.uid ~thread:t.c_thread ~stack_id:stack.Stack.id
      ~now:(Machine.now (machine t))
      payload
  in
  req.Request.hint_hctx <- hint;
  req.Request.hint_stream <- stream;
  (match tenant with
  | Some tn -> req.Request.tenant <- Tenant.idx tn
  | None -> ());
  (* Open-loop origin: the arrival process intended this request at
     [scheduled], which may precede [submitted_at] when the injector
     fell behind. Closed-loop callers pass [None] and keep the two
     equal, so nothing below deviates for them. *)
  (match scheduled with
  | Some s0 ->
      req.Request.scheduled_at <- Float.min s0 req.Request.submitted_at
  | None -> ());
  (* Trace context: present only when this request id is sampled, so
     with sampling off the whole path costs one option check. The flow
     starts at the scheduled origin; any injection lag shows up as its
     own stage rather than silently inflating "submit". *)
  req.Request.trace <-
    Trace.start (Runtime.tracer t.runtime) ~id:req.Request.id
      ~now:req.Request.scheduled_at;
  (match req.Request.trace with
  | Some fl ->
      if req.Request.scheduled_at < req.Request.submitted_at then begin
        Trace.open_stage fl ~name:"inject_lag" ~now:req.Request.scheduled_at;
        Trace.close_stage fl ~tid:t.c_thread ~now:req.Request.submitted_at
      end;
      Trace.open_stage fl ~name:"submit" ~now:req.Request.submitted_at
  | None -> ());
  bb_submit t req;
  match stack.Stack.exec_mode with
  | Stack_spec.Sync ->
      (* The whole DAG runs in the client thread: no IPC, no central
         authority — the Lab-D / fully-decentralized configuration. The
         connector still builds the request and walks the namespace and
         Module Registry itself. *)
      charge t sync_dispatch_ns;
      (match req.Request.trace with
      | Some fl -> Trace.close_stage fl ~tid:t.c_thread ~now:(Machine.now (machine t))
      | None -> ());
      let result = Runtime.exec_request t.runtime ~thread:t.c_thread req in
      (match req.Request.trace with
      | Some fl -> Trace.finish fl ~tid:t.c_thread ~now:(Machine.now (machine t))
      | None -> ());
      bb_result t ~id:req.Request.id result;
      (* The DAG ran to completion in this thread, so nothing can still
         reference the request: recycle it. *)
      Request.Pool.release t.pool req;
      settle ~ok:(Request.is_ok result);
      result
  | Stack_spec.Async ->
      if not (Ipc_manager.online (Runtime.ipc t.runtime)) then begin
        settle ~ok:false;
        recover t;
        dispatch_once t stack payload ~hint ~stream ~scheduled ~deadline_abs
      end
      else begin
        let qp = qp_for_stack t stack in
        charge t (costs t).Costs.shmem_enqueue_ns;
        Qp.submit qp req;
        (* "submit" ends (and the queue wait begins) once the request is
           in the submission ring. *)
        (match req.Request.trace with
        | Some fl ->
            let now = Machine.now (machine t) in
            Trace.close_stage fl ~tid:t.c_thread ~now;
            Trace.open_stage fl ~name:"queue_wait" ~now
        | None -> ());
        (* Deadline watchdog: wake the completion waiters at the
           deadline so a lost command cannot park us forever. *)
        let settled = ref false in
        if Float.is_finite deadline_abs then begin
          let m = machine t in
          Engine.spawn m.Machine.engine (fun () ->
              let delay = deadline_abs -. Machine.now m in
              if delay > 0.0 then Engine.wait delay;
              if not !settled then Qp.wake_all_waiters qp)
        end;
        let outcome =
          await_completion_or_crash t qp ~req_id:req.Request.id ~deadline_abs
        in
        settled := true;
        match outcome with
        | Ok done_req ->
            (* Pull the completion cache line back to our core. *)
            charge t (costs t).Costs.shmem_cross_core_ns;
            (match done_req.Request.trace with
            | Some fl ->
                Trace.finish fl ~tid:t.c_thread ~now:(Machine.now (machine t))
            | None -> ());
            let result =
              Option.value done_req.Request.result
                ~default:(Request.Failed "no result recorded")
            in
            bb_result t ~id:done_req.Request.id result;
            (* Completion consumed: the Runtime is done with the record. *)
            Request.Pool.release t.pool done_req;
            settle ~ok:(Request.is_ok result);
            result
        | Error `Deadline ->
            settle ~ok:false;
            Metrics.incr t.counters.fc_deadline_misses;
            bb_deadline t ~id:req.Request.id;
            Request.failed_errno "ETIMEDOUT"
              (Printf.sprintf "request %d missed its %.0fns deadline"
                 req.Request.id t.policy.deadline_ns)
        | Error `Crashed ->
            settle ~ok:false;
            recover t;
            dispatch_once t stack payload ~hint ~stream ~scheduled
              ~deadline_abs
      end

let deadline_of_policy t =
  let p = t.policy in
  if Float.is_finite p.deadline_ns then Machine.now (machine t) +. p.deadline_ns
  else infinity

let backoff_ns t attempt =
  let p = t.policy in
  let b =
    p.base_backoff_ns *. (p.backoff_multiplier ** Stdlib.float_of_int attempt)
  in
  let b = Float.min b p.max_backoff_ns in
  let j = p.jitter *. b in
  if j > 0.0 then b -. j +. Rng.float t.rng (2.0 *. j) else b

(* Client-side fault policy, shared by the single-request and batched
   paths: given the first attempt's result, run bounded retries with
   exponential backoff + jitter on transient failures, degraded-mode
   requeueing to another hardware queue on ENODEV, all under one
   per-request deadline. *)
let retry_transient t (stack : Stack.t) payload ~stream ~scheduled
    ~deadline_abs first =
  let p = t.policy in
  let rec next n ~hint result =
    if not (Request.is_transient_failure result) then result
    else if n >= p.max_retries then begin
      Metrics.incr t.counters.fc_exhausted;
      result
    end
    else begin
      Metrics.incr t.counters.fc_retries;
      (* Degraded mode: ENODEV means the queue/device is gone (not a
         retryable media error), so steer the retry to a different
         hardware queue instead of hammering the dead one. *)
      let hint =
        if Request.errno_of_result result = Some "ENODEV" then begin
          Metrics.incr t.counters.fc_requeues;
          Some (t.c_thread + n + 1)
        end
        else hint
      in
      Engine.wait (backoff_ns t n);
      if Machine.now (machine t) >= deadline_abs then begin
        Metrics.incr t.counters.fc_deadline_misses;
        bb_deadline t ~id:(-1);
        Request.failed_errno "ETIMEDOUT"
          "deadline exhausted during retry backoff"
      end
      else
        next (n + 1) ~hint
          (dispatch_once t stack payload ~hint ~stream ~scheduled
             ~deadline_abs)
    end
  in
  next 0 ~hint:None first

(* Submit a request and apply the fault policy to its outcome.

   [scheduled_at] is the open-loop arrival process's intended injection
   time: when given, the latency observed here (and fed to the runtime
   SLO, if one is configured) is measured from it rather than from the
   send — the coordinated-omission-safe origin. Closed-loop callers
   omit it and measure from the send as before. *)
let do_request t (stack : Stack.t) ?stream ?scheduled_at payload =
  let t_begin = Machine.now (machine t) in
  let deadline_abs = deadline_of_policy t in
  let result =
    retry_transient t stack payload ~stream ~scheduled:scheduled_at
      ~deadline_abs
      (dispatch_once t stack payload ~hint:None ~stream
         ~scheduled:scheduled_at ~deadline_abs)
  in
  let t_end = Machine.now (machine t) in
  let origin =
    match scheduled_at with Some s -> Float.min s t_begin | None -> t_begin
  in
  Metrics.observe t.latency_hist (t_end -. origin);
  (match Runtime.slo t.runtime with
  | Some slo ->
      Lab_obs.Latrec.Slo.observe slo ~latency_ns:(t_end -. origin) ~now:t_end
  | None -> ());
  result

(* --- Batched submission (io_uring-style multi-submit) --- *)

let make_request t (stack : Stack.t) payload =
  let req =
    Request.Pool.acquire t.pool
      ~id:(Runtime.next_request_id t.runtime)
      ~pid:t.c_pid ~uid:t.uid ~thread:t.c_thread ~stack_id:stack.Stack.id
      ~now:(Machine.now (machine t))
      payload
  in
  (* Batched ops skip admission (the batch is one doorbell, not a
     pacing point) but still carry the tenant stamp so the scheduler's
     DRR stage meters them. *)
  (match t.tenant with
  | Some tn -> req.Request.tenant <- Tenant.idx tn
  | None -> ());
  req

(* Push a whole batch into the stack's submission queue, ringing the
   worker's doorbell once. Per-entry enqueue work is still charged per
   request — only the wakeup is amortized. *)
let submit_batch t (stack : Stack.t) payloads =
  if not (Ipc_manager.online (Runtime.ipc t.runtime)) then recover t;
  apply_decentralized_upgrades t;
  let qp = qp_for_stack t stack in
  let reqs = List.map (make_request t stack) payloads in
  let tracer = Runtime.tracer t.runtime in
  List.iter
    (fun (r : Request.t) ->
      r.Request.trace <-
        Trace.start tracer ~id:r.Request.id ~now:r.Request.submitted_at;
      (match r.Request.trace with
      | Some fl -> Trace.open_stage fl ~name:"submit" ~now:r.Request.submitted_at
      | None -> ());
      bb_submit t r)
    reqs;
  charge t
    ((costs t).Costs.shmem_enqueue_ns
    *. Stdlib.float_of_int (List.length reqs));
  Qp.submit_n qp reqs;
  let t_in_ring = Machine.now (machine t) in
  List.iter
    (fun (r : Request.t) ->
      match r.Request.trace with
      | Some fl ->
          Trace.close_stage fl ~tid:t.c_thread ~now:t_in_ring;
          Trace.open_stage fl ~name:"queue_wait" ~now:t_in_ring
      | None -> ())
    reqs;
  reqs

(* Reap the whole batch: fill [firsts] for every (request id -> index)
   in [pending], discarding stale completions, failing what is still
   outstanding at the deadline, and transparently resubmitting the
   survivors (as a fresh single-doorbell batch) after a Runtime crash.
   [payloads] indexes the original payloads for those resubmissions. *)
let rec reap_rounds t (stack : Stack.t) ~deadline_abs ~payloads ~pending
    ~firsts =
  if Hashtbl.length pending > 0 then begin
    let qp = qp_for_stack t stack in
    (* One deadline watchdog covers the whole batch. *)
    let settled = ref false in
    if Float.is_finite deadline_abs then begin
      let m = machine t in
      Engine.spawn m.Machine.engine (fun () ->
          let delay = deadline_abs -. Machine.now m in
          if delay > 0.0 then Engine.wait delay;
          if not !settled then Qp.wake_all_waiters qp)
    end;
    let rec reap () =
      if Hashtbl.length pending = 0 then `Done
      else
        match Qp.try_completion qp with
        | Some req -> (
            match Hashtbl.find_opt pending req.Request.id with
            | Some i ->
                Hashtbl.remove pending req.Request.id;
                (* Pull the completion cache line back to our core. *)
                charge t (costs t).Costs.shmem_cross_core_ns;
                (match req.Request.trace with
                | Some fl ->
                    Trace.finish fl ~tid:t.c_thread
                      ~now:(Machine.now (machine t))
                | None -> ());
                let result =
                  Option.value req.Request.result
                    ~default:(Request.Failed "no result recorded")
                in
                bb_result t ~id:req.Request.id result;
                firsts.(i) <- Some result;
                (* Matched and recorded: recycle the record. *)
                Request.Pool.release t.pool req;
                reap ()
            | None -> reap () (* stale: an abandoned attempt's leftovers *))
        | None ->
            if Machine.now (machine t) >= deadline_abs then `Deadline
            else if Ipc_manager.online (Runtime.ipc t.runtime) then begin
              Qp.wait_completion_event qp;
              reap ()
            end
            else `Crashed
    in
    let outcome = reap () in
    settled := true;
    match outcome with
    | `Done -> ()
    | `Deadline ->
        Hashtbl.iter
          (fun id i ->
            Metrics.incr t.counters.fc_deadline_misses;
            bb_deadline t ~id;
            firsts.(i) <-
              Some
                (Request.failed_errno "ETIMEDOUT"
                   (Printf.sprintf "batch entry %d missed its %.0fns deadline"
                      i t.policy.deadline_ns)))
          pending;
        Hashtbl.reset pending
    | `Crashed ->
        let todo =
          List.sort compare (Hashtbl.fold (fun _id i acc -> i :: acc) pending [])
        in
        Hashtbl.reset pending;
        recover t;
        let reqs = submit_batch t stack (List.map (fun i -> payloads.(i)) todo) in
        List.iter2
          (fun (r : Request.t) i -> Hashtbl.replace pending r.Request.id i)
          reqs todo;
        reap_rounds t stack ~deadline_abs ~payloads ~pending ~firsts
  end

(* Await the already-submitted [reqs] and return their first-attempt
   results in submission order. No retry policy is applied here — that
   is [block_batch]'s job. *)
let reap_batch t (stack : Stack.t) (reqs : Request.t list) =
  let deadline_abs = deadline_of_policy t in
  let payloads =
    Array.of_list (List.map (fun (r : Request.t) -> r.Request.payload) reqs)
  in
  let firsts = Array.make (Array.length payloads) None in
  let pending = Hashtbl.create (Array.length payloads) in
  List.iteri (fun i (r : Request.t) -> Hashtbl.replace pending r.Request.id i) reqs;
  reap_rounds t stack ~deadline_abs ~payloads ~pending ~firsts;
  Array.to_list
    (Array.map
       (function Some r -> r | None -> Request.Failed "no result recorded")
       firsts)

let resolve t target =
  match Namespace.resolve (Runtime.namespace t.runtime) target with
  | Some stack -> Ok stack
  | None -> Error (Printf.sprintf "no LabStack mounted for %S" target)

let lookup_fd t fd =
  match Hashtbl.find_opt t.fd_table fd with
  | Some entry -> Ok entry
  | None -> Error (Printf.sprintf "bad file descriptor %d" fd)

let stack_of_id t sid =
  match Namespace.stack_by_id (Runtime.namespace t.runtime) sid with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "stack %d unmounted" sid)

let ( let* ) r f = Result.bind r f

let as_unit = function
  | Request.Done | Request.Fd _ | Request.Size _ -> Ok ()
  | Request.Denied m | Request.Failed m -> Error m

let as_size = function
  | Request.Size n -> Ok n
  | Request.Done | Request.Fd _ -> Ok 0
  | Request.Denied m | Request.Failed m -> Error m

(* GenericFS keeps fd state common to all filesystem stacks. *)
let open_file t ?(create = false) path =
  charge t (costs t).Costs.hash_op_ns;
  let* stack = resolve t path in
  let* () = as_unit (do_request t stack (Request.Posix (Request.Open { path; create }))) in
  let fd = t.next_fd in
  t.next_fd <- fd + 1;
  Hashtbl.replace t.fd_table fd (path, stack.Stack.id);
  Ok fd

(* GenericFS owns file-descriptor state, so close is a client-local
   table update — no Runtime round trip. *)
let close t fd =
  charge t (costs t).Costs.hash_op_ns;
  let* _entry = lookup_fd t fd in
  Hashtbl.remove t.fd_table fd;
  Ok ()

let pwrite t ~fd ~off ~bytes =
  charge t (costs t).Costs.hash_op_ns;
  let* path, sid = lookup_fd t fd in
  let* stack = stack_of_id t sid in
  as_size (do_request t stack (Request.Posix (Request.Pwrite { fd; path; off; bytes })))

let pread t ~fd ~off ~bytes =
  charge t (costs t).Costs.hash_op_ns;
  let* path, sid = lookup_fd t fd in
  let* stack = stack_of_id t sid in
  as_size (do_request t stack (Request.Posix (Request.Pread { fd; path; off; bytes })))

let fsync t ~fd =
  charge t (costs t).Costs.hash_op_ns;
  let* path, sid = lookup_fd t fd in
  let* stack = stack_of_id t sid in
  as_unit (do_request t stack (Request.Posix (Request.Fsync { fd; path })))

let create t path =
  let* stack = resolve t path in
  as_unit (do_request t stack (Request.Posix (Request.Create { path })))

let stat t path =
  let* stack = resolve t path in
  as_unit (do_request t stack (Request.Posix (Request.Open { path; create = false })))

let unlink t path =
  let* stack = resolve t path in
  as_unit (do_request t stack (Request.Posix (Request.Unlink { path })))

let rename t ~src ~dst =
  let* stack = resolve t src in
  as_unit (do_request t stack (Request.Posix (Request.Rename { src; dst })))

let put t ~key ~bytes =
  let* stack = resolve t key in
  as_unit (do_request t stack (Request.Kv (Request.Put { key; bytes })))

let get t ~key =
  let* stack = resolve t key in
  as_size (do_request t stack (Request.Kv (Request.Get { key })))

let delete t ~key =
  let* stack = resolve t key in
  as_unit (do_request t stack (Request.Kv (Request.Delete { key })))

let block_op t ?stream ?scheduled_at ~mount kind ~lba ~bytes =
  match Namespace.lookup (Runtime.namespace t.runtime) mount with
  | None -> Error (Printf.sprintf "nothing mounted at %S" mount)
  | Some stack ->
      as_size
        (do_request t stack ?stream ?scheduled_at
           (Request.Block { Request.b_kind = kind; b_lba = lba; b_bytes = bytes; b_sync = false }))

let write_block ?stream ?scheduled_at t ~mount ~lba ~bytes =
  block_op t ?stream ?scheduled_at ~mount Request.Write ~lba ~bytes

let read_block ?stream ?scheduled_at t ~mount ~lba ~bytes =
  block_op t ?stream ?scheduled_at ~mount Request.Read ~lba ~bytes

type batch_op = { op_kind : Request.io_kind; op_lba : int; op_bytes : int }

(* Batched block I/O: submit every op with one doorbell, reap them all,
   then apply the per-request fault policy to whatever failed
   transiently (retries go through the single-request path — by then
   the batch is broken up anyway). Sync stacks have no submission ring
   to coalesce, and a 1-element batch is exactly a single request. *)
let block_batch t ~mount ops =
  match Namespace.lookup (Runtime.namespace t.runtime) mount with
  | None -> Error (Printf.sprintf "nothing mounted at %S" mount)
  | Some stack -> (
      let payload_of op =
        Request.Block
          {
            Request.b_kind = op.op_kind;
            b_lba = op.op_lba;
            b_bytes = op.op_bytes;
            b_sync = false;
          }
      in
      match (stack.Stack.exec_mode, ops) with
      | _, [] -> Ok []
      | Stack_spec.Sync, ops ->
          Ok (List.map (fun op -> as_size (do_request t stack (payload_of op))) ops)
      | Stack_spec.Async, [ op ] ->
          Ok [ as_size (do_request t stack (payload_of op)) ]
      | Stack_spec.Async, ops ->
          let deadline_abs = deadline_of_policy t in
          let payloads = List.map payload_of ops in
          let reqs = submit_batch t stack payloads in
          let firsts = reap_batch t stack reqs in
          Ok
            (List.map2
               (fun payload first ->
                 as_size
                   (retry_transient t stack payload ~stream:None
                      ~scheduled:None ~deadline_abs first))
               payloads firsts))

let control t ~mount payload =
  match Namespace.lookup (Runtime.namespace t.runtime) mount with
  | None -> Error (Printf.sprintf "nothing mounted at %S" mount)
  | Some stack -> as_unit (do_request t stack (Request.Control payload))

(* clone/execve: the child re-connects (new shared-memory queue pairs)
   and asks the Runtime to copy the parent's open fds across. *)
let fork t ~new_pid ~new_thread =
  let child =
    connect t.runtime ~pid:new_pid ~uid:t.uid ~thread:new_thread
      ~recovery_timeout_ns:t.recovery_timeout_ns ~retry_policy:t.policy ()
  in
  (* One IPC round trip per fd table copy. *)
  charge t
    ((costs t).Costs.shmem_enqueue_ns +. (costs t).Costs.shmem_cross_core_ns);
  Hashtbl.iter (fun fd entry -> Hashtbl.replace child.fd_table fd entry) t.fd_table;
  child.next_fd <- t.next_fd;
  child
