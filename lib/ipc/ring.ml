type 'a t = {
  slots : 'a option array;
  mask : int;
  mutable head : int;  (* next pop position (consumer index) *)
  mutable tail : int;  (* next push position (producer index) *)
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  let cap = next_pow2 capacity in
  { slots = Array.make cap None; mask = cap - 1; head = 0; tail = 0 }

let capacity t = Array.length t.slots

let length t = t.tail - t.head

let is_empty t = t.head = t.tail

let is_full t = length t = capacity t

let try_push t v =
  if is_full t then false
  else begin
    t.slots.(t.tail land t.mask) <- Some v;
    t.tail <- t.tail + 1;
    true
  end

let try_pop t =
  if is_empty t then None
  else begin
    let idx = t.head land t.mask in
    let v = t.slots.(idx) in
    t.slots.(idx) <- None;
    t.head <- t.head + 1;
    v
  end

let peek t = if is_empty t then None else t.slots.(t.head land t.mask)

let space t = capacity t - length t

let push_n t vs =
  let rec go pushed = function
    | [] -> pushed
    | v :: rest -> if try_push t v then go (pushed + 1) rest else pushed
  in
  go 0 vs

let pop_n t n =
  let rec go acc k =
    if k <= 0 then List.rev acc
    else
      match try_pop t with
      | None -> List.rev acc
      | Some v -> go (v :: acc) (k - 1)
  in
  go [] n

let total_pushed t = t.tail
