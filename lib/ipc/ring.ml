(* Slots are an [Obj.t] array behind the phantom ['a]: the head/tail
   discipline guarantees a slot is only read back as ['a] between push
   and pop, so no option wrapper is needed per entry. [try_push] is
   thereby allocation-free (the old ['a option array] layout allocated
   a [Some] per push), and the [_arr]/[_into] batch operations move
   entries between caller-owned scratch arrays and the ring without
   building lists. Popped slots are reset to a dummy so the ring never
   pins dead entries for the GC. *)

type 'a t = {
  slots : Obj.t array;
  mask : int;
  mutable head : int;  (* next pop position (consumer index) *)
  mutable tail : int;  (* next push position (producer index) *)
}

let dummy : Obj.t = Obj.repr ()

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  let cap = next_pow2 capacity in
  { slots = Array.make cap dummy; mask = cap - 1; head = 0; tail = 0 }

let capacity t = Array.length t.slots

let length t = t.tail - t.head

let is_empty t = t.head = t.tail

let is_full t = length t = capacity t

let try_push t v =
  if is_full t then false
  else begin
    t.slots.(t.tail land t.mask) <- Obj.repr v;
    t.tail <- t.tail + 1;
    true
  end

let try_pop (type a) (t : a t) : a option =
  if is_empty t then None
  else begin
    let idx = t.head land t.mask in
    let v : a = Obj.obj t.slots.(idx) in
    t.slots.(idx) <- dummy;
    t.head <- t.head + 1;
    Some v
  end

let peek (type a) (t : a t) : a option =
  if is_empty t then None else Some (Obj.obj t.slots.(t.head land t.mask))

let space t = capacity t - length t

let push_n t vs =
  let rec go pushed = function
    | [] -> pushed
    | v :: rest -> if try_push t v then go (pushed + 1) rest else pushed
  in
  go 0 vs

let pop_n t n =
  let rec go acc k =
    if k <= 0 then List.rev acc
    else
      match try_pop t with
      | None -> List.rev acc
      | Some v -> go (v :: acc) (k - 1)
  in
  go [] n

let push_arr t src ~off ~len =
  if off < 0 || len < 0 || off + len > Array.length src then
    invalid_arg "Ring.push_arr";
  let free = space t in
  let n = if len < free then len else free in
  for i = 0 to n - 1 do
    t.slots.((t.tail + i) land t.mask) <- Obj.repr src.(off + i)
  done;
  t.tail <- t.tail + n;
  n

let pop_into (type a) (t : a t) (dst : a array) ~off ~max =
  if off < 0 || max < 0 || off + max > Array.length dst then
    invalid_arg "Ring.pop_into";
  let avail = length t in
  let n = if max < avail then max else avail in
  for i = 0 to n - 1 do
    let idx = (t.head + i) land t.mask in
    dst.(off + i) <- Obj.obj t.slots.(idx);
    t.slots.(idx) <- dummy
  done;
  t.head <- t.head + n;
  n

let total_pushed t = t.tail
