(** Bounded ring buffer with power-of-two capacity and masked indices —
    the layout of LabStor's shared-memory submission/completion queues.
    Pure data structure: callers account for the time cost of
    operations. *)

type 'a t

val create : capacity:int -> 'a t
(** Capacity is rounded up to a power of two; must be positive. *)

val capacity : 'a t -> int

val length : 'a t -> int

val is_empty : 'a t -> bool

val is_full : 'a t -> bool

val try_push : 'a t -> 'a -> bool

val try_pop : 'a t -> 'a option

val peek : 'a t -> 'a option

val space : 'a t -> int
(** Free slots remaining. *)

val push_n : 'a t -> 'a list -> int
(** Pushes entries in order until the list is exhausted or the ring is
    full; returns how many were pushed. *)

val pop_n : 'a t -> int -> 'a list
(** Pops up to [n] entries in FIFO order (fewer if the ring drains). *)

val total_pushed : 'a t -> int
(** Lifetime count of successful pushes (producer index). *)
