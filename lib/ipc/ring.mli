(** Bounded ring buffer with power-of-two capacity and masked indices —
    the layout of LabStor's shared-memory submission/completion queues.
    Pure data structure: callers account for the time cost of
    operations. *)

type 'a t

val create : capacity:int -> 'a t
(** Capacity is rounded up to a power of two; must be positive. *)

val capacity : 'a t -> int

val length : 'a t -> int

val is_empty : 'a t -> bool

val is_full : 'a t -> bool

val try_push : 'a t -> 'a -> bool

val try_pop : 'a t -> 'a option

val peek : 'a t -> 'a option

val space : 'a t -> int
(** Free slots remaining. *)

val push_n : 'a t -> 'a list -> int
(** Pushes entries in order until the list is exhausted or the ring is
    full; returns how many were pushed. *)

val pop_n : 'a t -> int -> 'a list
(** Pops up to [n] entries in FIFO order (fewer if the ring drains). *)

val push_arr : 'a t -> 'a array -> off:int -> len:int -> int
(** [push_arr t src ~off ~len] pushes [src.(off .. off+len-1)] in order
    until the ring fills; returns how many were pushed. Allocation-free:
    the batched counterpart of {!push_n} for callers that reuse a
    scratch array across batches. *)

val pop_into : 'a t -> 'a array -> off:int -> max:int -> int
(** [pop_into t dst ~off ~max] pops up to [max] entries in FIFO order
    into [dst.(off ...)]; returns how many were popped. Allocation-free
    counterpart of {!pop_n}. The caller should overwrite (or dummy-out)
    the filled prefix after use if ['a] is heap-allocated, since [dst]
    retains the entries. *)

val total_pushed : 'a t -> int
(** Lifetime count of successful pushes (producer index). *)
