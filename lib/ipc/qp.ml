open Lab_sim

type role = Primary | Intermediate

type ordering = Ordered | Unordered

type mark = Normal | Update_pending | Update_acked

type 'a t = {
  qp_id : int;
  sq : 'a Ring.t;
  cq : 'a Ring.t;
  qp_role : role;
  qp_ordering : ordering;
  mutable qp_mark : mark;
  mutable bells : unit Waitq.t list;
  (* Readiness listeners: fired on every doorbell ring and mark change,
     synchronously, so a poller can maintain a per-QP readiness bitmap
     instead of scanning idle queues. *)
  mutable ready_fns : (unit -> unit) list;
  cq_waiters : unit Waitq.t;  (* consumers blocked on an empty CQ *)
  sq_space : unit Waitq.t;  (* producers blocked on a full SQ *)
  cq_space : unit Waitq.t;  (* completers blocked on a full CQ *)
  rings : Lab_obs.Metrics.counter;
  sq_stall_count : Lab_obs.Metrics.counter;
  cq_stall_count : Lab_obs.Metrics.counter;
}

(* Counters live in the metrics registry when one is supplied
   ("ipc.qp<N>.doorbell_rings" etc.); otherwise they are detached and
   only readable through the accessors below. *)
let create ?metrics ?(sq_depth = 256) ?(cq_depth = 256) ~role ~ordering ~id () =
  let name k = Printf.sprintf "ipc.qp%d.%s" id k in
  let counter k = Lab_obs.Metrics.counter ?reg:metrics (name k) in
  {
    qp_id = id;
    sq = Ring.create ~capacity:sq_depth;
    cq = Ring.create ~capacity:cq_depth;
    qp_role = role;
    qp_ordering = ordering;
    qp_mark = Normal;
    bells = [];
    ready_fns = [];
    cq_waiters = Waitq.create ();
    sq_space = Waitq.create ();
    cq_space = Waitq.create ();
    rings = counter "doorbell_rings";
    sq_stall_count = counter "sq_stalls";
    cq_stall_count = counter "cq_stalls";
  }

let id t = t.qp_id

let role t = t.qp_role

let ordering t = t.qp_ordering

let mark t = t.qp_mark

let notify_ready t = List.iter (fun f -> f ()) t.ready_fns

let set_mark t m =
  t.qp_mark <- m;
  (* Mark transitions need the poller's attention (ack the pending
     update, resume draining after one) even with no new submissions. *)
  notify_ready t

let ring_bell t =
  Lab_obs.Metrics.incr t.rings;
  notify_ready t;
  List.iter (fun w -> ignore (Waitq.wake w ())) t.bells

let add_ready_listener t f =
  if not (List.exists (fun f' -> f' == f) t.ready_fns) then
    t.ready_fns <- f :: t.ready_fns

let remove_ready_listener t f =
  t.ready_fns <- List.filter (fun f' -> not (f' == f)) t.ready_fns

let doorbell_rings t = Lab_obs.Metrics.value t.rings

let sq_stalls t = Lab_obs.Metrics.value t.sq_stall_count

let cq_stalls t = Lab_obs.Metrics.value t.cq_stall_count

(* Producers park on [sq_space] when the submission ring is full and are
   woken one-per-slot as the worker pops entries — no timed busy-retry.
   A woken producer may race another for the freed slot; FIFO park order
   bounds the re-park chain. *)
let sq_park t =
  Lab_obs.Metrics.incr t.sq_stall_count;
  let slot = ref None in
  Waitq.park t.sq_space slot

let try_submit t v =
  let ok = Ring.try_push t.sq v in
  if ok then ring_bell t;
  ok

let rec submit t v =
  if Ring.try_push t.sq v then ring_bell t
  else begin
    sq_park t;
    submit t v
  end

let submit_n t vs =
  let rec push = function
    | [] -> ()
    | v :: rest ->
        if Ring.try_push t.sq v then push rest
        else begin
          sq_park t;
          push (v :: rest)
        end
  in
  push vs;
  (* One coalesced doorbell for the whole batch. *)
  if vs <> [] then ring_bell t

(* Array-batch submit: same parking/doorbell protocol as [submit_n]
   (push each entry, parking on SQ space when full; one coalesced bell
   for the whole batch) but driven from a caller-owned scratch array,
   so steady-state batched submission allocates nothing. *)
let submit_arr t src n =
  if n < 0 || n > Array.length src then invalid_arg "Qp.submit_arr";
  let i = ref 0 in
  while !i < n do
    let pushed = Ring.push_arr t.sq src ~off:!i ~len:(n - !i) in
    i := !i + pushed;
    if !i < n then sq_park t
  done;
  if n > 0 then ring_bell t

let try_completion t =
  match Ring.try_pop t.cq with
  | Some _ as v ->
      ignore (Waitq.wake t.cq_space ());
      v
  | None -> None

let rec await_completion t =
  match try_completion t with
  | Some v -> v
  | None ->
      let slot = ref None in
      Waitq.park t.cq_waiters slot;
      (* A completer placed our entry (or we raced another waiter; keep
         trying — FIFO park order bounds this). *)
      await_completion t

let wait_completion_event t =
  let slot = ref None in
  Waitq.park t.cq_waiters slot

let wake_all_waiters t =
  ignore (Waitq.wake_all t.cq_waiters ());
  (* Crash notification must also release processes parked on ring
     space, or they would sleep through the restart. *)
  ignore (Waitq.wake_all t.sq_space ());
  ignore (Waitq.wake_all t.cq_space ())

let poll_sq t =
  match Ring.try_pop t.sq with
  | Some _ as v ->
      ignore (Waitq.wake t.sq_space ());
      v
  | None -> None

let poll_sq_n t n =
  let vs = Ring.pop_n t.sq n in
  List.iter (fun _ -> ignore (Waitq.wake t.sq_space ())) vs;
  vs

(* Array-batch poll: identical pop-then-wake-per-slot sequence as
   [poll_sq_n], into a caller-owned scratch array. *)
let poll_sq_into t dst n =
  let got = Ring.pop_into t.sq dst ~off:0 ~max:n in
  for _ = 1 to got do
    ignore (Waitq.wake t.sq_space ())
  done;
  got

let peek_sq t = Ring.peek t.sq

let rec complete t v =
  if Ring.try_push t.cq v then ignore (Waitq.wake t.cq_waiters ())
  else begin
    Lab_obs.Metrics.incr t.cq_stall_count;
    let slot = ref None in
    Waitq.park t.cq_space slot;
    complete t v
  end

let sq_depth t = Ring.length t.sq

let cq_depth t = Ring.length t.cq

let total_submitted t = Ring.total_pushed t.sq

let set_doorbell t w =
  t.bells <- (match w with None -> [] | Some b -> [ b ])

let add_doorbell t b =
  if not (List.exists (fun b' -> b' == b) t.bells) then t.bells <- b :: t.bells

let remove_doorbell t b = t.bells <- List.filter (fun b' -> not (b' == b)) t.bells

let doorbell t = match t.bells with [] -> None | b :: _ -> Some b

let doorbells t = t.bells
