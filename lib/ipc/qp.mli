(** Queue pairs: a submission ring and a completion ring, the unit of
    client↔runtime communication.

    Properties from the paper: {e primary} queues carry requests
    initiated by clients; {e intermediate} queues carry requests spawned
    by other requests. {e Ordered} queues must be drained by a single
    worker in sequence; {e unordered} queues may be drained by many.
    Queues carry an upgrade mark used by the Module Manager's live
    upgrade protocol.

    Time costs of ring operations are charged by the caller (see
    {!Lab_sim.Costs}); this module only manages structure, blocking and
    wake-ups. *)

type role = Primary | Intermediate

type ordering = Ordered | Unordered

type mark = Normal | Update_pending | Update_acked

type 'a t

val create :
  ?metrics:Lab_obs.Metrics.t ->
  ?sq_depth:int ->
  ?cq_depth:int ->
  role:role ->
  ordering:ordering ->
  id:int ->
  unit ->
  'a t
(** [?metrics] attaches the queue pair's doorbell/stall counters to a
    registry under ["ipc.qp<id>."]; without it the counters are still
    maintained but only visible through the accessors below. *)

val id : 'a t -> int

val role : 'a t -> role

val ordering : 'a t -> ordering

val mark : 'a t -> mark

val set_mark : 'a t -> mark -> unit

(** {2 Client side} *)

val submit : 'a t -> 'a -> unit
(** Enqueues into the submission ring and rings the assigned worker's
    doorbell. Under backpressure (full ring) the caller parks on the
    SQ-space wait queue and is woken when the worker pops an entry.
    Must run inside a simulated process. *)

val submit_n : 'a t -> 'a list -> unit
(** Batched submit: enqueues every entry in order (parking on SQ space
    as needed) and rings the doorbell {e once} for the whole batch —
    the io_uring-style coalesced doorbell. Empty batches do not ring. *)

val try_submit : 'a t -> 'a -> bool
(** Non-blocking variant; still rings the doorbell on success. *)

val submit_arr : 'a t -> 'a array -> int -> unit
(** [submit_arr t src n] submits [src.(0 .. n-1)] with the same
    parking/doorbell protocol as {!submit_n} (park on SQ space when
    full, one coalesced doorbell per batch), but from a caller-owned
    scratch array: steady-state batched submission allocates nothing.
    [src] is not retained. *)

val await_completion : 'a t -> 'a
(** Blocks the calling process until a completion entry is available. *)

val try_completion : 'a t -> 'a option

val wait_completion_event : 'a t -> unit
(** Parks until a completion is posted {e or} the waiters are flushed by
    {!wake_all_waiters}; the caller must re-check the completion ring.
    Lets clients detect Runtime crashes instead of sleeping forever. *)

val wake_all_waiters : 'a t -> unit
(** Wakes every process blocked on completions or parked on ring space
    (crash notification). *)

(** {2 Worker side} *)

val poll_sq : 'a t -> 'a option
(** Non-blocking pop from the submission ring; wakes one producer
    parked on SQ space. *)

val poll_sq_n : 'a t -> int -> 'a list
(** Batched pop: up to [n] entries in FIFO order, waking one parked
    producer per freed slot. *)

val poll_sq_into : 'a t -> 'a array -> int -> int
(** [poll_sq_into t dst n] pops up to [n] entries into [dst.(0 ...)]
    and returns the count — the allocation-free counterpart of
    {!poll_sq_n} (same pop-then-wake-per-slot sequence). The caller
    owns [dst] and should dummy-out the filled prefix after processing
    so the scratch array does not pin completed requests. *)

val peek_sq : 'a t -> 'a option

val complete : 'a t -> 'a -> unit
(** Pushes into the completion ring and wakes a client blocked in
    {!await_completion}. Retries under backpressure. *)

val sq_depth : 'a t -> int
(** Requests currently queued for service (orchestrator input). *)

val cq_depth : 'a t -> int

val total_submitted : 'a t -> int

(** {2 Backpressure & doorbell observability} *)

val doorbell_rings : 'a t -> int
(** Lifetime count of doorbell rings ({!submit}/{!try_submit} ring once
    per entry; {!submit_n} once per batch) — the numerator of the
    doorbells-per-request metric. *)

val sq_stalls : 'a t -> int
(** Times a producer parked on a full submission ring. *)

val cq_stalls : 'a t -> int
(** Times a completer parked on a full completion ring. *)

val set_doorbell : 'a t -> unit Lab_sim.Waitq.t option -> unit
(** Attaches the doorbell of the worker assigned to this queue: each
    submission wakes that worker if it is idle-parked. [None] clears
    every attached doorbell. *)

val add_doorbell : 'a t -> unit Lab_sim.Waitq.t -> unit
(** Unordered queues may be drained by several workers: attach another
    doorbell. Submissions ring every attached doorbell. Idempotent. *)

val remove_doorbell : 'a t -> unit Lab_sim.Waitq.t -> unit

val doorbell : 'a t -> unit Lab_sim.Waitq.t option
(** The first attached doorbell, if any. *)

val add_ready_listener : 'a t -> (unit -> unit) -> unit
(** Registers a callback fired synchronously on every doorbell ring and
    every {!set_mark}, letting a poller keep a readiness bitmap over
    thousands of queue pairs instead of scanning the idle ones.
    Idempotent by physical equality, like {!add_doorbell}. *)

val remove_ready_listener : 'a t -> (unit -> unit) -> unit

val doorbells : 'a t -> unit Lab_sim.Waitq.t list
