(** IPC Manager: connection handshakes, queue-pair allocation backed by
    shared-memory regions, and runtime-liveness tracking used by crash
    recovery.

    ['req] is the request payload type carried by queue pairs (the
    LabStor request record, supplied by the core library). *)

type 'req t

type connection = {
  pid : Shmem.process_id;
  uid : int;
  region : Shmem.region_id;  (** region holding this client's primary queues *)
}

val create :
  ?metrics:Lab_obs.Metrics.t ->
  ?timeseries:Lab_obs.Timeseries.t ->
  Lab_sim.Engine.t ->
  'req t
(** [?metrics] is handed to every queue pair this manager allocates, so
    their doorbell/stall counters appear in the registry under
    ["ipc.qp<id>."].  [?timeseries] registers per-QP occupancy probes
    (["ipc.qp<id>.sq_depth"], ["ipc.qp<id>.cq_depth"]) with the
    continuous-profiling sampler as queue pairs are created. *)

val engine : 'req t -> Lab_sim.Engine.t

val shmem : 'req t -> Shmem.t

val connect : 'req t -> pid:int -> uid:int -> connection
(** Models the UNIX-domain-socket handshake: allocates and grants a
    queue region, records credentials, and charges the handshake
    latency. Must run inside a simulated process. *)

val disconnect : 'req t -> connection -> unit

val credentials : 'req t -> pid:int -> int option
(** The uid a connected process authenticated with. *)

val create_qp :
  'req t ->
  connection ->
  ?sq_depth:int ->
  ?cq_depth:int ->
  role:Qp.role ->
  ordering:Qp.ordering ->
  unit ->
  'req Qp.t
(** Allocates a queue pair owned by [connection]. Primary queues live in
    the connection's shared region; intermediate queues are private. *)

val qp : 'req t -> int -> 'req Qp.t option

val qps : 'req t -> 'req Qp.t list
(** All live queue pairs, in allocation order. *)

val primary_qps : 'req t -> 'req Qp.t list

val qps_of_connection : 'req t -> connection -> 'req Qp.t list

val destroy_qp : 'req t -> 'req Qp.t -> unit

(** {2 Runtime liveness} *)

val online : 'req t -> bool

val set_online : 'req t -> bool -> unit
(** Transitioning to online wakes every process blocked in
    {!wait_online}. *)

val wait_online : 'req t -> timeout_ns:float -> bool
(** Blocks until the runtime is online or [timeout_ns] elapses; returns
    whether the runtime came back. Must run inside a process. *)
