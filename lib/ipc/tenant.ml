(* Multi-tenant QoS: per-tenant admission control plus a weighted
   deficit-round-robin dispatch stage, built so per-op cost is O(1) in
   the number of registered tenants.

   Tenants live in a dense array indexed by a small integer (the index
   rides on each request), so the scheduler's lookup is one array read
   — no Hashtbl on the hot path. The DRR stage keeps only *backlogged*
   tenants on an intrusive singly-linked active list (int links inside
   the tenant records, head/tail in the table), so dispatch never
   scans idle tenants: 4096 mostly-idle tenants cost the same as 16.
   Queued ops are (bytes, park_cell) pairs in a per-tenant power-of-two
   ring; dispatching one is a ring pop plus {!Lab_sim.Engine.unpark} —
   no closure, list cell, or option allocated per op.

   Two service classes, mirroring blk-switch's L-app/T-app split (and
   the device's urgent-transfer arbitration): ops of at most
   [bypass_bytes] are latency-class and skip the dispatch window
   entirely; larger ops are throughput-class and pass the DRR stage,
   which releases them into the downstream stack only while the total
   outstanding throughput-class bytes stay under [window_bytes]. The
   window is what bounds a misbehaving bulk tenant's in-device
   footprint; DRR shares that window by weight among backlogged
   tenants.

   Admission control is the client-side half: a per-tenant token
   bucket ([rate_mbps], [burst_bytes]) plus an outstanding-op cap
   ([qcap]); over-rate or over-cap submissions are refused (the client
   maps this to EAGAIN and its normal retry/backoff). *)

type tenant = {
  idx : int;  (* dense table index; rides on requests *)
  ext_id : int;  (* external identity (client uid) *)
  weight : int;
  rate_bytes_per_ns : float;  (* 0. = uncapped *)
  burst_bytes : float;
  qcap : int;  (* max admitted-and-uncompleted ops *)
  (* token bucket *)
  mutable tokens : float;
  mutable refilled_at : float;
  (* admission-side accounting *)
  mutable queued : int;  (* admitted ops not yet completed *)
  mutable throttled : int;  (* admission refusals *)
  mutable ops_done : int;
  mutable bytes_done : int;
  (* DRR state. The deficit counts bytes, so it lives in an int: a
     mutable float field in this mixed record would be boxed, and the
     serve/replenish stores would put two fresh words on the minor heap
     per dispatched op — busting the allocation budget. *)
  mutable deficit : int;
  mutable active : bool;
  mutable anext : int;  (* active-list link; -1 = end *)
  mutable dispatched : int;  (* ops through the DRR window *)
  mutable bypassed : int;  (* latency-class ops (skipped the window) *)
  mutable served_bytes : int;  (* throughput-class bytes dispatched *)
  (* pending throughput-class ops: parallel power-of-two rings *)
  mutable pb : int array;  (* bytes *)
  mutable pc : Lab_sim.Engine.park_cell array;
  mutable phead : int;
  mutable plen : int;
  lat : Lab_obs.Metrics.histogram;  (* end-to-end op latency, ns *)
}

type t = {
  quantum_bytes : int;
  window_bytes : int;
  bypass_bytes : int;
  mutable tenants : tenant array;
  mutable n : int;
  by_ext : (int, int) Hashtbl.t;  (* ext_id -> idx; registration only *)
  mutable ahead : int;  (* active (backlogged) list, -1 = empty *)
  mutable atail : int;
  mutable backlog : int;  (* queued throughput-class ops, all tenants *)
  mutable inflight_bytes : int;  (* dispatched, not yet released *)
}

let create ?(quantum_bytes = 65536) ?(window_bytes = 131072)
    ?(bypass_bytes = 16384) () =
  {
    quantum_bytes;
    window_bytes;
    bypass_bytes;
    tenants = [||];
    n = 0;
    by_ext = Hashtbl.create 64;
    ahead = -1;
    atail = -1;
    backlog = 0;
    inflight_bytes = 0;
  }

let dummy_cell = Lab_sim.Engine.make_park_cell ()

let register t ~ext_id ~weight ~rate_mbps ~burst_bytes ~qcap =
  if Hashtbl.mem t.by_ext ext_id then
    invalid_arg (Printf.sprintf "Tenant.register: tenant %d exists" ext_id);
  let idx = t.n in
  if idx >= Array.length t.tenants then begin
    let cap = Stdlib.max 16 (2 * Array.length t.tenants) in
    let grown = Array.make cap (Obj.magic 0 : tenant) in
    Array.blit t.tenants 0 grown 0 t.n;
    t.tenants <- grown
  end;
  let tn =
    {
      idx;
      ext_id;
      weight = Stdlib.max 1 weight;
      rate_bytes_per_ns = (if rate_mbps <= 0.0 then 0.0 else rate_mbps /. 1000.0);
      burst_bytes = Stdlib.float_of_int (Stdlib.max 1 burst_bytes);
      qcap = Stdlib.max 1 qcap;
      tokens = Stdlib.float_of_int (Stdlib.max 1 burst_bytes);
      refilled_at = 0.0;
      queued = 0;
      throttled = 0;
      ops_done = 0;
      bytes_done = 0;
      deficit = 0;
      active = false;
      anext = -1;
      dispatched = 0;
      bypassed = 0;
      served_bytes = 0;
      pb = Array.make 8 0;
      pc = Array.make 8 dummy_cell;
      phead = 0;
      plen = 0;
      lat = Lab_obs.Metrics.histogram "lat";
    }
  in
  t.tenants.(idx) <- tn;
  t.n <- idx + 1;
  Hashtbl.add t.by_ext ext_id idx;
  tn

let n_tenants t = t.n

let get t idx = t.tenants.(idx)

let find t ~ext_id =
  match Hashtbl.find_opt t.by_ext ext_id with
  | Some idx -> Some t.tenants.(idx)
  | None -> None

let idx tn = tn.idx

let ext_id tn = tn.ext_id

let weight tn = tn.weight

let deficit tn = Stdlib.float_of_int tn.deficit

let throttled tn = tn.throttled

let queued tn = tn.queued

let ops_done tn = tn.ops_done

let bytes_done tn = tn.bytes_done

let dispatched tn = tn.dispatched

let bypassed tn = tn.bypassed

let served_bytes tn = tn.served_bytes

let latency tn = tn.lat

let backlog t = t.backlog

let inflight_bytes t = t.inflight_bytes

let window_bytes t = t.window_bytes

let quantum_bytes t = t.quantum_bytes

(* ---------------- admission (client side) ---------------- *)

let admit t tn ~bytes ~now =
  ignore t;
  if tn.queued >= tn.qcap then begin
    tn.throttled <- tn.throttled + 1;
    false
  end
  else if tn.rate_bytes_per_ns > 0.0 then begin
    let dt = now -. tn.refilled_at in
    if dt > 0.0 then begin
      tn.refilled_at <- now;
      let filled = tn.tokens +. (dt *. tn.rate_bytes_per_ns) in
      tn.tokens <- (if filled > tn.burst_bytes then tn.burst_bytes else filled)
    end;
    let b = Stdlib.float_of_int bytes in
    if tn.tokens >= b then begin
      tn.tokens <- tn.tokens -. b;
      tn.queued <- tn.queued + 1;
      true
    end
    else begin
      tn.throttled <- tn.throttled + 1;
      false
    end
  end
  else begin
    tn.queued <- tn.queued + 1;
    true
  end

let complete t tn ~bytes ~latency_ns ~ok =
  ignore t;
  if tn.queued > 0 then tn.queued <- tn.queued - 1;
  Lab_obs.Metrics.observe tn.lat latency_ns;
  if ok then begin
    tn.ops_done <- tn.ops_done + 1;
    tn.bytes_done <- tn.bytes_done + bytes
  end

(* ---------------- DRR dispatch (scheduler side) ---------------- *)

let windowed t ~bytes = bytes > t.bypass_bytes

let note_bypass tn = tn.bypassed <- tn.bypassed + 1

(* Intrusive active list: only backlogged tenants are linked. *)

let[@inline] activate t tn =
  if not tn.active then begin
    tn.active <- true;
    tn.anext <- -1;
    if t.atail < 0 then t.ahead <- tn.idx
    else t.tenants.(t.atail).anext <- tn.idx;
    t.atail <- tn.idx
  end

let[@inline] deactivate_head t tn =
  t.ahead <- tn.anext;
  if t.ahead < 0 then t.atail <- -1;
  tn.active <- false;
  tn.anext <- -1;
  tn.deficit <- 0

let[@inline] rotate t =
  let h = t.ahead in
  let tn = t.tenants.(h) in
  if tn.anext >= 0 then begin
    t.ahead <- tn.anext;
    tn.anext <- -1;
    t.tenants.(t.atail).anext <- h;
    t.atail <- h
  end

let[@inline never] ring_grow tn =
  let cap = Array.length tn.pb in
  let ncap = 2 * cap in
  let pb = Array.make ncap 0 in
  let pc = Array.make ncap dummy_cell in
  for i = 0 to tn.plen - 1 do
    let j = (tn.phead + i) land (cap - 1) in
    pb.(i) <- tn.pb.(j);
    pc.(i) <- tn.pc.(j)
  done;
  tn.pb <- pb;
  tn.pc <- pc;
  tn.phead <- 0

let[@inline] ring_push tn ~bytes cell =
  if tn.plen = Array.length tn.pb then ring_grow tn;
  let i = (tn.phead + tn.plen) land (Array.length tn.pb - 1) in
  Array.unsafe_set tn.pb i bytes;
  Array.unsafe_set tn.pc i cell;
  tn.plen <- tn.plen + 1

(* Serve the head tenant while its deficit covers its head op; when it
   cannot, replenish by quantum x weight and rotate. O(1) amortized per
   dispatched op as long as quantum covers typical op sizes; bounded
   regardless because each replenish strictly grows the head's deficit.
   Every dispatch is a ring pop + unpark: nothing allocated. *)
let rec drain t =
  if t.backlog > 0 && t.inflight_bytes < t.window_bytes then begin
    let tn = t.tenants.(t.ahead) in
    let b = Array.unsafe_get tn.pb tn.phead in
    if tn.deficit >= b then begin
      let cell = Array.unsafe_get tn.pc tn.phead in
      Array.unsafe_set tn.pc tn.phead dummy_cell;
      tn.phead <- (tn.phead + 1) land (Array.length tn.pb - 1);
      tn.plen <- tn.plen - 1;
      tn.deficit <- tn.deficit - b;
      tn.dispatched <- tn.dispatched + 1;
      tn.served_bytes <- tn.served_bytes + b;
      t.backlog <- t.backlog - 1;
      t.inflight_bytes <- t.inflight_bytes + b;
      if tn.plen = 0 then deactivate_head t tn;
      Lab_sim.Engine.unpark cell;
      drain t
    end
    else begin
      tn.deficit <- tn.deficit + (t.quantum_bytes * tn.weight);
      rotate t;
      drain t
    end
  end

(* Returns true when the op may proceed immediately (idle stage with
   window room: it is accounted in-flight and the caller must NOT
   park). Returns false when the op was queued: the caller must park on
   [cell]; the DRR stage unparks it when its turn comes. The caller
   parks immediately after — same coroutine, no intervening yield — so
   the unpark cannot arrive before the park. *)
let submit t tn ~bytes cell =
  if t.backlog = 0 && t.inflight_bytes < t.window_bytes then begin
    t.inflight_bytes <- t.inflight_bytes + bytes;
    tn.dispatched <- tn.dispatched + 1;
    tn.served_bytes <- tn.served_bytes + bytes;
    true
  end
  else begin
    ring_push tn ~bytes cell;
    t.backlog <- t.backlog + 1;
    activate t tn;
    false
  end

let release t ~bytes =
  t.inflight_bytes <- t.inflight_bytes - bytes;
  if t.backlog > 0 then drain t
