(** Multi-tenant QoS: token-bucket admission control plus a weighted
    deficit-round-robin (DRR) dispatch stage whose per-op cost is O(1)
    in the number of registered tenants.

    Tenants are dense-indexed records; the index rides on each request
    so the scheduler's lookup is one array read. Backlogged tenants sit
    on an intrusive active list (int links inside the records), so
    dispatch never scans idle tenants. Queued ops are (bytes,
    {!Lab_sim.Engine.park_cell}) pairs in per-tenant rings: a dispatch
    is a ring pop plus an unpark — no per-op allocation.

    Ops divide into two classes, mirroring blk-switch's L-app/T-app
    split: latency-class ops (at most [bypass_bytes]) skip the dispatch
    window; throughput-class ops pass DRR, which keeps total
    outstanding throughput-class bytes under [window_bytes] and shares
    that window by weight among backlogged tenants. *)

type tenant

type t

val create :
  ?quantum_bytes:int -> ?window_bytes:int -> ?bypass_bytes:int -> unit -> t
(** [quantum_bytes] (default 64 KiB) is the DRR replenishment per visit
    per unit weight; [window_bytes] (default 128 KiB) caps outstanding
    throughput-class bytes; ops of at most [bypass_bytes] (default
    16 KiB, the device's urgent-transfer threshold) are latency-class
    and bypass the window. *)

val register :
  t ->
  ext_id:int ->
  weight:int ->
  rate_mbps:float ->
  burst_bytes:int ->
  qcap:int ->
  tenant
(** Registers a tenant under external id [ext_id] (a client uid).
    [rate_mbps <= 0.] means uncapped admission; [weight] below 1 is
    clamped to 1. @raise Invalid_argument on duplicate [ext_id]. *)

val n_tenants : t -> int

val get : t -> int -> tenant
(** Dense-index lookup — the scheduler's per-request path. *)

val find : t -> ext_id:int -> tenant option
(** External-id lookup (Hashtbl) — registration/CLI path, not per-op. *)

(** {2 Admission control — client side} *)

val admit : t -> tenant -> bytes:int -> now:float -> bool
(** Charges the token bucket and the outstanding-op cap. [false] means
    the op must be refused (EAGAIN) — the refusal is counted in
    {!throttled}. A [true] admission must be paired with {!complete}. *)

val complete :
  t -> tenant -> bytes:int -> latency_ns:float -> ok:bool -> unit
(** Ends an admitted op: releases its cap slot and records its
    end-to-end latency (and, when [ok], its throughput). *)

(** {2 DRR dispatch — scheduler side} *)

val windowed : t -> bytes:int -> bool
(** True for throughput-class ops (they must pass {!submit} /
    {!release}); false for latency-class ops, which bypass the window
    (note them with {!note_bypass}). *)

val note_bypass : tenant -> unit

val submit : t -> tenant -> bytes:int -> Lab_sim.Engine.park_cell -> bool
(** Offers a throughput-class op to the dispatch window. [true]: the op
    was dispatched immediately (accounted in flight; do {e not} park).
    [false]: the op was queued — the caller must park on [cell] at
    once (no intervening yield) and will be unparked in DRR order.
    Either way the op must later be paired with {!release}. *)

val release : t -> bytes:int -> unit
(** Returns a dispatched op's bytes to the window and drains the DRR
    stage into the freed room. *)

(** {2 Introspection / probes} *)

val idx : tenant -> int

val ext_id : tenant -> int

val weight : tenant -> int

val deficit : tenant -> float

val throttled : tenant -> int

val queued : tenant -> int

val ops_done : tenant -> int

val bytes_done : tenant -> int

val dispatched : tenant -> int

val bypassed : tenant -> int

val served_bytes : tenant -> int

val latency : tenant -> Lab_obs.Metrics.histogram

val backlog : t -> int

val inflight_bytes : t -> int

val window_bytes : t -> int

val quantum_bytes : t -> int
