open Lab_sim

type connection = { pid : Shmem.process_id; uid : int; region : Shmem.region_id }

type 'req t = {
  engine : Engine.t;
  shm : Shmem.t;
  metrics : Lab_obs.Metrics.t option;
  timeseries : Lab_obs.Timeseries.t option;
  mutable next_qp_id : int;
  table : (int, 'req Qp.t) Hashtbl.t;
  mutable order : int list;  (* allocation order, newest first *)
  owners : (int, Shmem.process_id) Hashtbl.t;  (* qp id -> owner pid *)
  creds : (Shmem.process_id, int) Hashtbl.t;
  mutable is_online : bool;
  online_waiters : unit Waitq.t;
}

(* One-time UNIX-domain-socket handshake. *)
let handshake_ns = 30_000.0

let queue_region_bytes = 1 lsl 20

let create ?metrics ?timeseries engine =
  {
    engine;
    shm = Shmem.create ();
    metrics;
    timeseries;
    next_qp_id = 0;
    table = Hashtbl.create 64;
    order = [];
    owners = Hashtbl.create 64;
    creds = Hashtbl.create 16;
    is_online = true;
    online_waiters = Waitq.create ();
  }

let engine t = t.engine

let shmem t = t.shm

let connect t ~pid ~uid =
  Engine.wait handshake_ns;
  let region = Shmem.allocate t.shm ~owner:pid ~size:queue_region_bytes in
  Shmem.map t.shm region pid;
  Hashtbl.replace t.creds pid uid;
  { pid; uid; region }

let qps_of_connection t conn =
  Hashtbl.fold
    (fun id qp acc ->
      match Hashtbl.find_opt t.owners id with
      | Some pid when pid = conn.pid -> qp :: acc
      | _ -> acc)
    t.table []

let destroy_qp t qp =
  Hashtbl.remove t.table (Qp.id qp);
  Hashtbl.remove t.owners (Qp.id qp);
  t.order <- List.filter (fun id -> id <> Qp.id qp) t.order

let disconnect t conn =
  List.iter (destroy_qp t) (qps_of_connection t conn);
  Hashtbl.remove t.creds conn.pid;
  Shmem.unmap t.shm conn.region conn.pid;
  Shmem.free t.shm conn.region

let credentials t ~pid = Hashtbl.find_opt t.creds pid

let create_qp t conn ?sq_depth ?cq_depth ~role ~ordering () =
  let id = t.next_qp_id in
  t.next_qp_id <- id + 1;
  let qp = Qp.create ?metrics:t.metrics ?sq_depth ?cq_depth ~role ~ordering ~id () in
  Hashtbl.replace t.table id qp;
  Hashtbl.replace t.owners id conn.pid;
  t.order <- id :: t.order;
  (* Queue pairs appear as clients connect, so their occupancy series
     self-register with the continuous-profiling sampler here. The
     probes only read ring counters. *)
  (match t.timeseries with
  | Some ts ->
      Lab_obs.Timeseries.add_series ts
        (Printf.sprintf "ipc.qp%d.sq_depth" id)
        (fun _now -> Stdlib.float_of_int (Qp.sq_depth qp));
      Lab_obs.Timeseries.add_series ts
        (Printf.sprintf "ipc.qp%d.cq_depth" id)
        (fun _now -> Stdlib.float_of_int (Qp.cq_depth qp))
  | None -> ());
  qp

let qp t id = Hashtbl.find_opt t.table id

let qps t =
  List.rev_map (fun id -> Hashtbl.find t.table id) t.order

let primary_qps t = List.filter (fun q -> Qp.role q = Qp.Primary) (qps t)

let online t = t.is_online

let set_online t b =
  let was = t.is_online in
  t.is_online <- b;
  if b && not was then ignore (Waitq.wake_all t.online_waiters ())

let wait_online t ~timeout_ns =
  if t.is_online then true
  else begin
    let deadline = Engine.now t.engine +. timeout_ns in
    let rec loop () =
      if t.is_online then true
      else if Engine.now t.engine >= deadline then false
      else begin
        (* Re-check periodically so the timeout can fire even if nobody
           wakes us; wake-ups arrive sooner via the waitq. *)
        let slot = ref None in
        let woken = ref false in
        Engine.spawn t.engine (fun () ->
            Engine.wait (Float.min 1_000_000.0 (deadline -. Engine.now t.engine));
            if not !woken then ignore (Waitq.wake_all t.online_waiters ()));
        Waitq.park t.online_waiters slot;
        woken := true;
        loop ()
      end
    in
    loop ()
  end
