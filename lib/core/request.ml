type io_kind = Read | Write

type posix_op =
  | Open of { path : string; create : bool }
  | Close of { fd : int }
  | Pread of { fd : int; path : string; off : int; bytes : int }
  | Pwrite of { fd : int; path : string; off : int; bytes : int }
  | Fsync of { fd : int; path : string }
  | Create of { path : string }
  | Unlink of { path : string }
  | Rename of { src : string; dst : string }

type kv_op =
  | Put of { key : string; bytes : int }
  | Get of { key : string }
  | Delete of { key : string }

type block_op = {
  b_kind : io_kind;
  b_lba : int;
  b_bytes : int;
  b_sync : bool;  (** force-unit-access: journal/flush writes that must
                      bypass caches and reach the device *)
}

type payload =
  | Posix of posix_op
  | Kv of kv_op
  | Block of block_op
  | Control of int

type result =
  | Done
  | Fd of int
  | Size of int
  | Denied of string
  | Failed of string

(* All fields are mutable so completed requests can be recycled through
   {!Pool} instead of allocating a fresh 13-field record per operation.
   Code outside the pool still treats identity fields (id, pid, uid,
   thread, stack_id, payload, submitted_at) as immutable for the
   lifetime of one operation. *)
type t = {
  mutable id : int;
  mutable pid : int;
  mutable uid : int;
  mutable thread : int;
  mutable stack_id : int;
  mutable hop : string;
  mutable payload : payload;
  mutable result : result option;
  mutable hint_hctx : int option;
      (** hardware-queue steering decision made by a scheduler LabMod *)
  mutable hint_stream : int option;
      (** client-provided stream id for sequential-access detection;
          caches fall back to the pid when absent *)
  mutable prefetch : bool;
      (** speculative readahead fill issued by a cache, not a demand
          access — downstream caches must not re-trigger readahead on it *)
  mutable trace : Lab_obs.Trace.flow option;
      (** span-tracer context travelling with the request; [None] unless
          the request id is sampled (see Lab_obs.Trace) *)
  mutable tenant : int;
      (** dense QoS-tenant index ([-1] = no tenant): one array read for
          the scheduler's per-tenant lookup instead of a Hashtbl probe *)
  mutable submitted_at : float;
  mutable scheduled_at : float;
      (** coordinated-omission-safe latency origin: when an open-loop
          arrival process intended this request to exist, which can be
          earlier than [submitted_at] if the generator fell behind.
          Equal to [submitted_at] for closed-loop requests. *)
}

let make ~id ~pid ~uid ~thread ~stack_id ~now payload =
  {
    id;
    pid;
    uid;
    thread;
    stack_id;
    hop = "";
    payload;
    result = None;
    hint_hctx = None;
    hint_stream = None;
    prefetch = false;
    trace = None;
    tenant = -1;
    submitted_at = now;
    scheduled_at = now;
  }

(* Free-list of recycled request records. A released request is
   re-initialized on acquire, so recycling is invisible to request
   consumers; release also blanks payload/trace/result so a parked
   record pins no strings, flows or closures. Ownership rule: release
   only once the operation's completion has been consumed — a request
   abandoned in flight (deadline miss, crash) must simply be dropped
   (the GC reclaims it) because the runtime may still hold it. *)
module Pool = struct
  type req = t

  type t = { mutable stack : req array; mutable size : int }

  let create () = { stack = [||]; size = 0 }

  let length p = p.size

  let acquire p ~id ~pid ~uid ~thread ~stack_id ~now payload =
    if p.size = 0 then make ~id ~pid ~uid ~thread ~stack_id ~now payload
    else begin
      p.size <- p.size - 1;
      let r = p.stack.(p.size) in
      r.id <- id;
      r.pid <- pid;
      r.uid <- uid;
      r.thread <- thread;
      r.stack_id <- stack_id;
      r.hop <- "";
      r.payload <- payload;
      r.result <- None;
      r.hint_hctx <- None;
      r.hint_stream <- None;
      r.prefetch <- false;
      r.trace <- None;
      r.tenant <- -1;
      r.submitted_at <- now;
      r.scheduled_at <- now;
      r
    end

  let release p r =
    r.hop <- "";
    r.payload <- Control 0;
    r.result <- None;
    r.hint_hctx <- None;
    r.hint_stream <- None;
    r.trace <- None;
    r.tenant <- -1;
    if p.size >= Array.length p.stack then begin
      let n = Stdlib.max 16 (2 * Array.length p.stack) in
      let stack = Array.make n r in
      Array.blit p.stack 0 stack 0 p.size;
      p.stack <- stack
    end;
    p.stack.(p.size) <- r;
    p.size <- p.size + 1
end

let payload_bytes = function
  | Posix (Pread { bytes; _ }) | Posix (Pwrite { bytes; _ }) -> bytes
  | Kv (Put { bytes; _ }) -> bytes
  | Block { b_bytes; _ } -> b_bytes
  | Posix _ | Kv _ | Control _ -> 0

let bytes_of t = payload_bytes t.payload

let block_of t = match t.payload with Block b -> Some b | _ -> None

(* LBAs address 512-byte sectors (the device profiles' block size);
   [block_end_lba] is the first sector past the transfer. *)
let sector_bytes = 512

let block_end_lba b = b.b_lba + ((b.b_bytes + sector_bytes - 1) / sector_bytes)

(* Two block ops are mergeable when the second starts exactly where the
   first ends, moves the same direction, and neither demands
   force-unit-access ordering (sync writes must hit the device as
   issued). *)
let blocks_adjacent a b =
  a.b_kind = b.b_kind && (not a.b_sync) && (not b.b_sync)
  && b.b_lba = block_end_lba a

let is_ok = function Done | Fd _ | Size _ -> true | Denied _ | Failed _ -> false

(* Errno-style failures: device faults surface as [Failed "ECODE: ..."]
   so clients can pick a recovery policy without a new result variant
   (which would ripple through every LabMod). *)
let failed_errno errno detail = Failed (errno ^ ": " ^ detail)

let errno_of_result = function
  | Failed msg -> (
      match String.index_opt msg ':' with
      | Some i when i >= 2 ->
          let tok = String.sub msg 0 i in
          if
            tok.[0] = 'E'
            && String.for_all (fun ch -> ch >= 'A' && ch <= 'Z') tok
          then Some tok
          else None
      | _ -> None)
  | Done | Fd _ | Size _ | Denied _ -> None

(* Failures worth retrying: media errors (EIO), torn writes (rewrite
   the data) and vanished devices (ENODEV — requeue elsewhere or fail
   over to a mirror leg; distinct from EIO so policy can tell retry
   from fail-over) — and admission-control pushback (EAGAIN: the
   tenant's token bucket or queue cap refused the op; back off and
   retry). A blown deadline (ETIMEDOUT) is final — the time budget is
   already spent. *)
let is_transient_failure r =
  match errno_of_result r with
  | Some ("EIO" | "ENODEV" | "ETORN" | "EAGAIN") -> true
  | Some _ | None -> false

(* A torn-write failure message carries "(<n> persisted)" — the byte
   count the device actually wrote before tearing (see
   Lab_device.Device.error_to_string). Splitting a merged request back
   into its constituents needs that prefix length. *)
let torn_persisted_of_result r =
  match (errno_of_result r, r) with
  | Some "ETORN", Failed msg -> (
      match String.rindex_opt msg '(' with
      | None -> None
      | Some i -> (
          let rest = String.sub msg (i + 1) (String.length msg - i - 1) in
          match String.index_opt rest ' ' with
          | None -> None
          | Some j -> int_of_string_opt (String.sub rest 0 j)))
  | _ -> None

let pp_payload fmt = function
  | Posix (Open { path; create }) ->
      Format.fprintf fmt "open(%s%s)" path (if create then ", O_CREAT" else "")
  | Posix (Close { fd }) -> Format.fprintf fmt "close(%d)" fd
  | Posix (Pread { fd; off; bytes; _ }) ->
      Format.fprintf fmt "pread(%d, %d, %d)" fd off bytes
  | Posix (Pwrite { fd; off; bytes; _ }) ->
      Format.fprintf fmt "pwrite(%d, %d, %d)" fd off bytes
  | Posix (Fsync { fd; _ }) -> Format.fprintf fmt "fsync(%d)" fd
  | Posix (Create { path }) -> Format.fprintf fmt "create(%s)" path
  | Posix (Unlink { path }) -> Format.fprintf fmt "unlink(%s)" path
  | Posix (Rename { src; dst }) -> Format.fprintf fmt "rename(%s, %s)" src dst
  | Kv (Put { key; bytes }) -> Format.fprintf fmt "put(%s, %d)" key bytes
  | Kv (Get { key }) -> Format.fprintf fmt "get(%s)" key
  | Kv (Delete { key }) -> Format.fprintf fmt "delete(%s)" key
  | Block { b_kind; b_lba; b_bytes; _ } ->
      Format.fprintf fmt "%s(lba=%d, %d)"
        (match b_kind with Read -> "bread" | Write -> "bwrite")
        b_lba b_bytes
  | Control n -> Format.fprintf fmt "control(%d)" n

let pp_result fmt = function
  | Done -> Format.pp_print_string fmt "done"
  | Fd fd -> Format.fprintf fmt "fd=%d" fd
  | Size n -> Format.fprintf fmt "size=%d" n
  | Denied msg -> Format.fprintf fmt "denied: %s" msg
  | Failed msg -> Format.fprintf fmt "failed: %s" msg
