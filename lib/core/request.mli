(** I/O requests flowing through LabStacks.

    A request carries one operation from a well-defined interface
    (POSIX, key-value, block, or control), plus the routing state the
    Runtime needs: the originating client, the LabStack, and the current
    position in its DAG. *)

type io_kind = Read | Write

type posix_op =
  | Open of { path : string; create : bool }
  | Close of { fd : int }
  | Pread of { fd : int; path : string; off : int; bytes : int }
  | Pwrite of { fd : int; path : string; off : int; bytes : int }
  | Fsync of { fd : int; path : string }
  | Create of { path : string }
  | Unlink of { path : string }
  | Rename of { src : string; dst : string }

type kv_op =
  | Put of { key : string; bytes : int }
  | Get of { key : string }
  | Delete of { key : string }

type block_op = {
  b_kind : io_kind;
  b_lba : int;
  b_bytes : int;
  b_sync : bool;  (** force-unit-access: journal/flush writes that must
                      bypass caches and reach the device *)
}

type payload =
  | Posix of posix_op
  | Kv of kv_op
  | Block of block_op
  | Control of int  (** opaque message, used by upgrade/dummy tests *)

type result =
  | Done
  | Fd of int
  | Size of int
  | Denied of string
  | Failed of string

type t = {
  mutable id : int;
  mutable pid : int;  (** client process *)
  mutable uid : int;  (** credentials for permission checks *)
  mutable thread : int;  (** submitting thread, for CPU accounting *)
  mutable stack_id : int;
  mutable hop : string;  (** UUID of the LabMod currently responsible *)
  mutable payload : payload;
  mutable result : result option;
  mutable hint_hctx : int option;
      (** hardware-queue steering decision made by a scheduler LabMod *)
  mutable hint_stream : int option;
      (** client-provided stream id for sequential-access detection;
          caches fall back to the pid when absent *)
  mutable prefetch : bool;
      (** speculative readahead fill issued by a cache, not a demand
          access — downstream caches must not re-trigger readahead on it *)
  mutable trace : Lab_obs.Trace.flow option;
      (** span-tracer context travelling with the request. [None] unless
          tracing is on and the id is sampled; instrumentation sites
          along the I/O path emit stage/module spans onto it. A request
          derived from another by record copy inherits the flow; a
          request synthesized with {!make} (merged op, journal flush)
          starts untraced. *)
  mutable tenant : int;
      (** dense QoS-tenant index stamped by the client at dispatch
          ([-1] = no tenant): the scheduler's per-tenant lookup is one
          array read, never a Hashtbl probe *)
  mutable submitted_at : float;
  mutable scheduled_at : float;
      (** coordinated-omission-safe latency origin: when an open-loop
          arrival process {e intended} this request to exist, which can
          be earlier than [submitted_at] if the generator fell behind
          its schedule. {!make} and {!Pool.acquire} initialize it to
          [submitted_at]; an open-loop injector overwrites it before
          dispatch. Latency measured from here includes the time the
          request spent waiting to even be sent — the part closed-loop
          (send-time) measurement omits. *)
}
(** Fields are mutable to support {!Pool} recycling; everything except
    the explicitly-mutable routing state (hop, result, hints, prefetch,
    trace) must still be treated as immutable for the lifetime of one
    operation. *)

val make :
  id:int ->
  pid:int ->
  uid:int ->
  thread:int ->
  stack_id:int ->
  now:float ->
  payload ->
  t

val bytes_of : t -> int
(** Payload size in bytes (0 for metadata/control operations). *)

val payload_bytes : payload -> int
(** Same, directly on a payload — admission control needs the size
    before any request record exists. *)

(** Free-list recycling of request records, so steady-state clients
    reuse one record per outstanding slot instead of allocating a fresh
    record per operation. {!Pool.acquire} re-initializes every field
    (indistinguishable from {!make}); {!Pool.release} blanks
    payload/result/trace so parked records pin nothing.

    Ownership rule: release a request only after its completion has
    been consumed by the owner. Requests abandoned in flight (deadline
    expiry, runtime crash, stale duplicate) must {e not} be released —
    the runtime may still reference them; dropping them to the GC is
    always safe. *)
module Pool : sig
  type req = t

  type t

  val create : unit -> t

  val length : t -> int
  (** Records currently parked. *)

  val acquire :
    t ->
    id:int ->
    pid:int ->
    uid:int ->
    thread:int ->
    stack_id:int ->
    now:float ->
    payload ->
    req

  val release : t -> req -> unit
end

(** {2 Block-request geometry (adjacent-LBA merging)} *)

val sector_bytes : int
(** Bytes per LBA (512, the device sector size). *)

val block_of : t -> block_op option

val block_end_lba : block_op -> int
(** First sector past the transfer. *)

val blocks_adjacent : block_op -> block_op -> bool
(** [blocks_adjacent a b] is true when [b] starts exactly at
    [block_end_lba a], moves in the same direction, and neither is a
    force-unit-access write — the condition for coalescing the two into
    one device operation. *)

val is_ok : result -> bool

val failed_errno : string -> string -> result
(** [failed_errno "EIO" detail] is [Failed "EIO: detail"]. Device faults
    travel through stacks in this errno-tagged form so client-side
    policy can distinguish retryable failures from semantic ones. *)

val errno_of_result : result -> string option
(** The leading ["E..."] token of an errno-tagged [Failed], if any.
    Ordinary failures (e.g. ["labfs: no such file"]) yield [None]. *)

val is_transient_failure : result -> bool
(** True for [EIO], [ENODEV] and [ETORN] failures — the ones a client
    may retry (with requeueing for [ENODEV], which means the device or
    queue is gone rather than a retryable media error). [ETIMEDOUT] is
    final. *)

val torn_persisted_of_result : result -> int option
(** For an [ETORN] failure, the byte count the device persisted before
    tearing (parsed from the driver's "(n persisted)" detail); [None]
    otherwise. Lets a merge point fail only the constituent requests
    beyond the persisted prefix. *)

val pp_payload : Format.formatter -> payload -> unit

val pp_result : Format.formatter -> result -> unit
