type mod_type =
  | Filesystem
  | Kv_store
  | Scheduler
  | Cache
  | Permissions
  | Compression
  | Consistency
  | Driver
  | Generic
  | Control

type state = ..

type state += No_state

type ctx = {
  machine : Lab_sim.Machine.t;
  thread : int;
  forward : Request.t -> Request.result;
  forward_async : Request.t -> (Request.result -> unit) -> unit;
}

type t = {
  name : string;
  uuid : string;
  mod_type : mod_type;
  mutable version : int;
  mutable state : state;
  ops : ops;
}

and ops = {
  operate : t -> ctx -> Request.t -> Request.result;
  est_processing_time : t -> Request.t -> float;
  state_update : state -> state;
  state_repair : t -> unit;
}

let make ~name ~uuid ~mod_type ?(state = No_state) ops =
  { name; uuid; mod_type; version = 1; state; ops }

let default_est _ _ = 500.0

let mod_type_name = function
  | Filesystem -> "filesystem"
  | Kv_store -> "kv_store"
  | Scheduler -> "scheduler"
  | Cache -> "cache"
  | Permissions -> "permissions"
  | Compression -> "compression"
  | Consistency -> "consistency"
  | Driver -> "driver"
  | Generic -> "generic"
  | Control -> "control"

(* Stack composition rules: interfaces narrow as requests descend
   towards hardware. Drivers are sinks; Generic mods are client-side
   dispatchers and never appear inside a DAG. *)
let compatible_downstream up down =
  match (up, down) with
  | _, Generic -> false
  | Driver, _ -> false
  | Generic, _ -> true
  (* Consistency is an interposer: accepts anything non-driver upstream
     and feeds the data path below it. *)
  | Consistency, (Cache | Compression | Scheduler | Driver | Control) -> true
  | Consistency, (Filesystem | Kv_store | Permissions | Consistency) -> false
  | (Filesystem | Kv_store | Permissions | Cache | Compression), Consistency -> true
  | (Scheduler | Control), Consistency -> false
  | (Filesystem | Kv_store), (Permissions | Cache | Compression | Scheduler | Driver | Control) -> true
  | (Filesystem | Kv_store), (Filesystem | Kv_store) -> false
  | Permissions, (Filesystem | Kv_store | Cache | Compression | Scheduler | Driver | Control) -> true
  | Permissions, Permissions -> false
  | Cache, (Compression | Scheduler | Driver | Cache) -> true  (* tiered caches *)
  | Compression, (Scheduler | Driver | Cache) -> true
  | Scheduler, Driver -> true
  | Control, Control -> true
  | Cache, (Filesystem | Kv_store | Permissions | Control) -> false
  | Compression, (Filesystem | Kv_store | Permissions | Compression | Control) -> false
  | Scheduler, (Filesystem | Kv_store | Permissions | Cache | Compression | Scheduler | Control) -> false
  | Control, (Filesystem | Kv_store | Permissions | Cache | Compression | Scheduler | Driver) -> false
