(** The LabMod: a single-purpose, self-contained I/O module.

    A LabMod is made of four elements (§III-A of the paper):
    - {e type}: the interface it implements ({!mod_type});
    - {e operation}: [operate], which consumes a request and produces a
      result, possibly forwarding derived requests downstream via the
      context;
    - {e state}: an instance-private value of the extensible {!state}
      type, transferable across code versions by [state_update];
    - {e connector}: provided by the client library / Generic LabMods,
      which construct requests and place them in queue pairs.

    Implementations must also provide the platform APIs that make
    LabMods upgradeable, stackable and measurable: [state_update]
    (live upgrade), [state_repair] (crash recovery), and
    [est_processing_time] (work orchestration). *)

type mod_type =
  | Filesystem
  | Kv_store
  | Scheduler
  | Cache
  | Permissions
  | Compression
  | Consistency
  | Driver
  | Generic
  | Control

type state = ..
(** Each implementation extends this with its private state. *)

type state += No_state

type ctx = {
  machine : Lab_sim.Machine.t;
  thread : int;  (** thread executing the operation *)
  forward : Request.t -> Request.result;
      (** hands a (possibly derived) request to the next stage(s) of the
          LabStack DAG and waits for their result *)
  forward_async : Request.t -> (Request.result -> unit) -> unit;
      (** asynchronous variant: the downstream stages run in their own
          process while the operator continues (the paper's asynchronous
          message passing between LabMods); the callback fires with the
          downstream result so writeback/group-commit failures are
          observable — pass [ignore] to fire-and-forget *)
}

type t = {
  name : string;  (** implementation name, e.g. ["labfs"] *)
  uuid : string;  (** instance identity in the Module Registry *)
  mod_type : mod_type;
  mutable version : int;
  mutable state : state;
  ops : ops;
}

and ops = {
  operate : t -> ctx -> Request.t -> Request.result;
  est_processing_time : t -> Request.t -> float;
      (** expected CPU time (ns) to process this request, used by the
          Work Orchestrator to separate latency-sensitive queues from
          computational ones *)
  state_update : state -> state;
      (** builds the new version's state from the old instance's state *)
  state_repair : t -> unit;
      (** invoked by clients after a Runtime crash + restart *)
}

val make :
  name:string ->
  uuid:string ->
  mod_type:mod_type ->
  ?state:state ->
  ops ->
  t

val default_est : t -> Request.t -> float
(** A conservative default estimate: a few hundred ns per request. *)

val compatible_downstream : mod_type -> mod_type -> bool
(** [compatible_downstream upstream downstream]: which module types may
    feed which (e.g. anything can feed a Driver; a Driver feeds
    nothing). Used by LabStack validation. *)

val mod_type_name : mod_type -> string
