(** Discrete-event simulation engine.

    Simulated processes are ordinary OCaml functions run under an effect
    handler. Inside a process, {!wait} advances virtual time and
    {!suspend} parks the process until some other process resumes it.
    The event queue is ordered by (time, sequence number), so runs are
    fully deterministic.

    Virtual time is a [float] count of nanoseconds since simulation
    start. *)

type t

type resumer = unit -> unit
(** Calling a resumer schedules the suspended process to continue at the
    current virtual time. A resumer is one-shot: second and later calls
    are ignored. *)

val create : unit -> t

val now : t -> float
(** Current virtual time in nanoseconds. *)

val spawn : t -> ?name:string -> (unit -> unit) -> unit
(** [spawn t f] registers process [f] to start at the current time.
    May be called from inside or outside a running process. *)

val spawn_at : t -> float -> (unit -> unit) -> unit
(** [spawn_at t time f] starts [f] at absolute virtual [time]. *)

val schedule : t -> float -> (unit -> unit) -> unit
(** [schedule t time thunk] runs [thunk] at absolute virtual [time] as
    a plain callback — no effect handler, so [thunk] must not call
    {!wait}/{!suspend}. Cheaper than {!spawn_at} for fire-and-forget
    actions; does not clamp past times (the queue orders them by
    (time, seq) like any other event). *)

val timer : t -> ns:int -> (int -> unit) -> int -> unit
(** [timer t ~ns fn arg] runs [fn arg] after [ns] simulated
    nanoseconds (negative treated as 0). The closure-free hot path:
    with a preallocated [fn], scheduling and dispatch touch only the
    engine's event pool — zero minor-heap allocation, unlike
    {!schedule}/{!wait} which cost a closure / an effect continuation.
    [fn] must not call {!wait}/{!suspend}. *)

val now_here : unit -> float
(** Current virtual time of the calling process's engine. Must be
    called from within a process (like {!wait}); lets library code read
    the clock without carrying an engine handle. *)

val wait : float -> unit
(** [wait d] suspends the calling process for [d] simulated nanoseconds.
    Negative [d] is treated as 0. Must be called from within a process. *)

val suspend : (resumer -> unit) -> unit
(** [suspend register] parks the calling process and hands a one-shot
    {!resumer} to [register]. The process continues when the resumer is
    invoked. *)

type park_cell
(** A reusable parking spot. Unlike {!suspend} — whose first-class
    resumer costs a closure, a fired flag, and a register callback per
    use — a park cell stores the suspended continuation in place, so a
    pooled cell makes repeated park/unpark cycles free of everything
    but the continuation the effect runtime itself allocates. *)

val make_park_cell : unit -> park_cell

val park : park_cell -> unit
(** [park cell] suspends the calling process into [cell]. The cell must
    be empty (one process per cell at a time); the process continues
    when {!unpark} is called. Must be called from within a process. *)

val unpark : park_cell -> unit
(** Schedules the process parked in [cell] to continue at its engine's
    current virtual time, exactly as invoking a {!resumer} would.
    One-shot per park: an empty cell is a no-op. May be called from
    inside or outside a process. *)

val parked : park_cell -> bool
(** True while a process is parked in the cell. *)

val run : ?until:float -> t -> unit
(** Executes events until the queue drains or virtual time would exceed
    [until]. Processes still suspended when the queue drains simply never
    continue (this models daemons outliving the experiment). *)

val step : t -> bool
(** Executes exactly one event; false when the queue is empty. Lets a
    caller interleave simulation with a host-side stop condition without
    discarding pending events. *)

val active : t -> bool
(** True while the engine has queued events. *)

val events_executed : t -> int
(** Total event count; useful for regression tests on determinism. *)

val set_tick : t -> period:float -> (float -> unit) -> unit
(** Installs the virtual-time sampling hook: [f] is called at every
    multiple of [period] the clock crosses while executing events, with
    the boundary time (and [now] set to it for the call's duration).

    The hook is {e not} an engine event: it never appears in the event
    heap, does not count in {!events_executed}, cannot keep the engine
    alive, and fires only while real events still advance the clock —
    so installing it cannot change a run's event count, event ordering,
    or final virtual time. The callback must only read simulation
    state: calling {!wait}, {!suspend}, or {!spawn} from it is
    unsupported. One hook per engine; installing replaces the previous
    one. @raise Invalid_argument if [period <= 0]. *)

val clear_tick : t -> unit
(** Removes the sampling hook. *)

exception Stopped
(** Raised inside processes that the engine terminates via {!stop_all}. *)

val stop_all : t -> unit
(** Drops all queued events. Suspended processes are abandoned. *)
