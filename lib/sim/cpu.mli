(** CPU core model.

    A machine is a set of cores. A simulated thread occupies a core only
    for the duration of each compute burst; the core is a FIFO resource.
    When a core switches between distinct threads a context-switch cost
    is charged and counted — so a thread with a dedicated core never
    pays switches, which is the mechanism behind several LabStor
    results. *)

type t

type thread_id = int

val create : ?costs:Costs.t -> ncores:int -> unit -> t

val ncores : t -> int

val compute : t -> thread:thread_id -> ?core:int -> float -> unit
(** [compute t ~thread ns] occupies a core for [ns] (plus a context
    switch if the core last ran a different thread). With [?core] the
    burst is pinned to that core; otherwise the thread's affinity
    (default: thread id mod ncores) is used. Must be called from a
    simulated process. *)

val pin : t -> thread:thread_id -> core:int -> unit
(** Sets the thread's core affinity for subsequent unpinned bursts. *)

val context_switches : t -> int
(** Total context switches across all cores since the last reset. *)

val busy_ns : t -> float
(** Total busy nanoseconds across all cores since the last reset. *)

val busy_ns_of_core : t -> int -> float

val busy_ns_upto : t -> int -> now:float -> float
(** Busy nanoseconds of one core accumulated strictly up to [now]:
    unlike {!busy_ns_of_core} (which charges a whole burst the moment
    it starts), the portion of an in-flight burst beyond [now] is
    excluded. Two calls bracketing a sampling interval therefore yield
    the exact busy time {e within} that interval — the per-core
    utilization-timeline primitive. *)

val utilization : t -> elapsed:float -> float
(** Busy fraction of the whole machine over [elapsed] ns: in [0,1]. *)

val reset_stats : t -> unit
