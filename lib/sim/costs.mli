(** Calibrated software-path cost constants, in nanoseconds.

    Every timing claim in the benchmarks flows through these constants,
    so they are gathered in one place and overridable per experiment.
    Defaults are calibrated so the reproduced experiments match the
    shapes reported in the LabStor paper (see EXPERIMENTS.md). *)

type t = {
  ctx_switch_ns : float;  (** full thread context switch, incl. cache damage *)
  syscall_ns : float;  (** user/kernel mode switch round trip, no blocking *)
  copy_ns_per_byte : float;  (** copy across the user/kernel boundary *)
  user_copy_ns_per_byte : float;  (** plain userspace memcpy *)
  cache_insert_ns : float;  (** page-cache index insert *)
  cache_lookup_ns : float;  (** page-cache index lookup *)
  cache_shard_ns : float;
      (** per-shard service entry: lock word + shard descriptor pull,
          paid once per distinct shard a request touches (the cost that
          sharding spreads across cores instead of serializing) *)
  kalloc_ns : float;  (** kernel request-structure allocation (bio, etc.) *)
  shmem_enqueue_ns : float;  (** producer-side shared-memory ring enqueue *)
  shmem_cross_core_ns : float;
      (** extra cost to pull a request cache line on a different core *)
  shmem_batch_frac : float;
      (** fraction of [shmem_cross_core_ns] each request after the first
          pays when a worker pulls a whole batch from one queue (adjacent
          ring slots ride the same inter-core transfer) *)
  poll_spin_ns : float;  (** one empty polling iteration *)
  hash_op_ns : float;  (** one hashmap operation (inode table, registry) *)
  lock_ns : float;  (** uncontended lock acquire+release *)
  atomic_ns : float;  (** one atomic RMW *)
  wakeup_ns : float;  (** scheduler latency to wake a blocked thread *)
  interrupt_ns : float;  (** per-completion IRQ handling *)
  permission_check_ns : float;  (** credential + ACL walk per request *)
}

val default : t

val copy_cost : t -> int -> float
(** [copy_cost c bytes] is the boundary-copy cost for [bytes]. *)

val user_copy_cost : t -> int -> float

val cross_core_batch_cost : t -> int -> float
(** [cross_core_batch_cost c n] is the amortized cost of pulling [n]
    requests from one queue in a single sweep: full
    [shmem_cross_core_ns] for the first, [shmem_batch_frac] of it for
    each subsequent entry. Zero for [n <= 0]. *)
