type thread_id = int

type core = {
  lock : Semaphore.t;
  mutable last_thread : thread_id option;
  mutable busy : float;
  mutable switches : int;
  (* End time of the burst currently charged to [busy]. The semaphore
     serializes bursts, so at most one is in flight per core; a sampler
     asking for busy time up to an instant inside the burst subtracts
     the not-yet-elapsed overhang (interval accounting). *)
  mutable burst_end : float;
}

type t = { costs : Costs.t; cores : core array; affinity : (thread_id, int) Hashtbl.t }

let create ?(costs = Costs.default) ~ncores () =
  if ncores <= 0 then invalid_arg "Cpu.create: ncores must be positive";
  let make_core _ =
    {
      lock = Semaphore.create 1;
      last_thread = None;
      busy = 0.0;
      switches = 0;
      burst_end = 0.0;
    }
  in
  { costs; cores = Array.init ncores make_core; affinity = Hashtbl.create 64 }

let ncores t = Array.length t.cores

let pin t ~thread ~core =
  if core < 0 || core >= Array.length t.cores then invalid_arg "Cpu.pin: bad core";
  Hashtbl.replace t.affinity thread core

let core_of t thread =
  match Hashtbl.find_opt t.affinity thread with
  | Some c -> c
  | None -> thread mod Array.length t.cores

let compute t ~thread ?core ns =
  let ns = if ns < 0.0 then 0.0 else ns in
  let idx = match core with Some c -> c | None -> core_of t thread in
  let c = t.cores.(idx) in
  Semaphore.acquire c.lock;
  let switch =
    match c.last_thread with
    | Some prev when prev = thread -> 0.0
    | Some _ ->
        c.switches <- c.switches + 1;
        t.costs.ctx_switch_ns
    | None -> 0.0
  in
  c.last_thread <- Some thread;
  let total = ns +. switch in
  c.busy <- c.busy +. total;
  c.burst_end <- Engine.now_here () +. total;
  Engine.wait total;
  Semaphore.release c.lock

let context_switches t =
  Array.fold_left (fun acc c -> acc + c.switches) 0 t.cores

let busy_ns t = Array.fold_left (fun acc c -> acc +. c.busy) 0.0 t.cores

let busy_ns_of_core t i = t.cores.(i).busy

(* Busy nanoseconds of core [i] accumulated strictly up to [now]: the
   whole-burst charge made at burst start minus the part of an
   in-flight burst that lies beyond [now]. Exact for any [now] between
   the previous and current engine event, which is what gives a
   periodic sampler per-interval busy fractions instead of attributing
   a long burst entirely to the interval it began in. *)
let busy_ns_upto t i ~now =
  let c = t.cores.(i) in
  let overhang = Float.max 0.0 (c.burst_end -. now) in
  Float.max 0.0 (c.busy -. overhang)

let utilization t ~elapsed =
  if elapsed <= 0.0 then 0.0
  else Float.min 1.0 (busy_ns t /. (elapsed *. Stdlib.float_of_int (Array.length t.cores)))

let reset_stats t =
  Array.iter
    (fun c ->
      c.busy <- 0.0;
      c.switches <- 0)
    t.cores
