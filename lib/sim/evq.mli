(** Monomorphic simulator event queue: calendar-queue buckets over a
    flat structure-of-arrays overflow heap.

    Entries are [(time : float, seq : int, slot : int)] triples held in
    parallel unboxed arrays; {!pop} returns them in strictly ascending
    [(time, seq)] order — identical to a stable binary heap keyed on
    [(time, seq)] with unique seqs (same-time entries drain in push
    order).

    Because a [float] crossing a function boundary would be boxed by
    the compiler, the key is exchanged through staging cells instead of
    arguments/results: write the time into [key_in.(0)] before calling
    {!push}; after {!pop}, read the popped entry's time from
    [key_out.(0)] and its seq from [out_seq]. The record is exposed so
    those reads/writes compile to plain array/field accesses. Treat
    every other field as private. *)

type t = {
  key_in : float array;  (** [key_in.(0)] = time staged before {!push} *)
  key_out : float array;  (** [key_out.(0)] = time of the last {!pop} *)
  mutable out_seq : int;  (** seq of the last {!pop} *)
  nbuckets : int;
  fq : float array;
      (** [0] wstart · [1] 1/width · [2] float nbuckets · [3] width *)
  mutable cur : int;
  mutable cur_sorted : bool;
  bt : float array array;
  bs : int array array;
  bv : int array array;
  blen : int array;
  bpos : int array;
  occ : int array;  (** occupancy bitmap, 32 buckets per word *)
  mutable ht : float array;
  mutable hs : int array;
  mutable hv : int array;
  mutable hsize : int;
  mutable count : int;
}

val create : ?nbuckets:int -> ?width:float -> unit -> t
(** [create ()] uses 16384 buckets of 8 ns — one 131 µs window. Narrow
    buckets keep per-bucket sorts small under high concurrency, and the
    occupancy bitmap makes skipping empty buckets O(1), so sparse
    workloads don't pay for the width. Entries past the window fall
    back to the overflow heap and migrate in when the window advances,
    so any spread of times is correct; geometry only affects speed.
    @raise Invalid_argument unless both are positive. *)

val push : t -> seq:int -> slot:int -> unit
(** Inserts the entry [(key_in.(0), seq, slot)]. Seqs must be unique
    per queue ({!pop} order among equal times follows seqs). Amortized
    O(1); allocates only when a bucket or the heap grows. *)

val pop : t -> int
(** Removes the minimum-[(time, seq)] entry and returns its slot, or
    [-1] if the queue is empty. The popped key is left in [key_out.(0)]
    and [out_seq]. Amortized O(log n) worst case, O(1) typical. *)

val length : t -> int

val is_empty : t -> bool

val clear : t -> unit
(** Drops all entries. Entries are scalar triples, so no heap
    references are retained; callers owning payloads indexed by slot
    must blank those separately. *)
