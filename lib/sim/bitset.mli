(** Dense bitset with constant-time set/clear and de Bruijn
    count-trailing-zeros iteration over the set bits — the same
    occupancy-bitmap trick as {!Evq}'s calendar queue. Scanning costs
    one word read per 32 empty slots, so polling 10,000 mostly-idle
    indices costs about the same as polling 10. *)

type t

val create : int -> t
(** [create n] holds bits [0 .. n-1], all initially clear. *)

val capacity : t -> int

val resize : t -> int -> unit
(** Grows capacity to at least [n] bits, preserving existing bits.
    Never shrinks. *)

val set : t -> int -> unit

val clear : t -> int -> unit

val mem : t -> int -> bool

val clear_all : t -> unit

val is_empty : t -> bool

val next_set : t -> int -> int
(** [next_set t from] is the smallest set index [>= from], or [-1].
    Reads the words live, so bits set at indices beyond the cursor
    during an iteration are found by that same iteration — the exact
    semantics of a linear array scan, minus visiting empty words. *)
