type t = {
  ctx_switch_ns : float;
  syscall_ns : float;
  copy_ns_per_byte : float;
  user_copy_ns_per_byte : float;
  cache_insert_ns : float;
  cache_lookup_ns : float;
  cache_shard_ns : float;
  kalloc_ns : float;
  shmem_enqueue_ns : float;
  shmem_cross_core_ns : float;
  shmem_batch_frac : float;
  poll_spin_ns : float;
  hash_op_ns : float;
  lock_ns : float;
  atomic_ns : float;
  wakeup_ns : float;
  interrupt_ns : float;
  permission_check_ns : float;
}

let default =
  {
    ctx_switch_ns = 2000.0;
    syscall_ns = 500.0;
    copy_ns_per_byte = 0.35;
    user_copy_ns_per_byte = 0.08;
    cache_insert_ns = 400.0;
    cache_lookup_ns = 250.0;
    cache_shard_ns = 120.0;
    kalloc_ns = 1200.0;
    shmem_enqueue_ns = 120.0;
    shmem_cross_core_ns = 600.0;
    shmem_batch_frac = 0.25;
    poll_spin_ns = 80.0;
    hash_op_ns = 180.0;
    lock_ns = 60.0;
    atomic_ns = 25.0;
    wakeup_ns = 1200.0;
    interrupt_ns = 900.0;
    permission_check_ns = 260.0;
  }

let copy_cost c bytes = c.copy_ns_per_byte *. Stdlib.float_of_int bytes

(* Cross-core pull for a batch of [n] requests from one queue: the
   first entry pays the full inter-core transfer, the rest land in
   lines the prefetcher already pulled alongside it. *)
let cross_core_batch_cost c n =
  if n <= 0 then 0.0
  else
    c.shmem_cross_core_ns
    *. (1.0 +. (c.shmem_batch_frac *. Stdlib.float_of_int (n - 1)))

let user_copy_cost c bytes = c.user_copy_ns_per_byte *. Stdlib.float_of_int bytes
