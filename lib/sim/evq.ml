(* Monomorphic simulator event queue: a bucketed calendar-queue front
   end over a flat structure-of-arrays binary heap for far-future
   events.

   Entries are (time : float, seq : int, slot : int) triples kept in
   parallel unboxed arrays — no boxed keys, no closures, no comparator
   indirection: every comparison is an inlined (time, seq) test on
   unboxed floats and ints. Pop order is exactly ascending (time, seq),
   i.e. byte-identical to the binary heap the engine used before
   (same-time entries drain in push order because seqs are unique and
   monotonic).

   Layout. The calendar covers one window of [nbuckets] buckets of
   [width] ns starting at [wstart]; an entry due inside the window is
   appended, unsorted, to its bucket. Entries past the window go to the
   overflow heap. Draining sorts each bucket once when the cursor
   reaches it; entries that arrive for the bucket currently draining
   (schedule-at-now is common) are insertion-placed into the sorted
   remainder. When the window is exhausted it is re-anchored at the
   overflow minimum and every heap entry now inside the new window
   migrates into buckets, so an idle stretch costs one re-anchor, not a
   walk over empty buckets.

   Floats must never cross a function boundary on the hot path (the
   compiler would box them), so the API is staged: writers store the
   time into [key_in] before calling {!push}; {!pop} returns the slot
   and leaves the key in [key_out]/[out_seq]. The record is deliberately
   transparent so the engine reads those cells without a call. *)

type t = {
  key_in : float array;  (* [0] = time staged by the caller before push *)
  key_out : float array;  (* [0] = time of the last popped entry *)
  mutable out_seq : int;  (* seq of the last popped entry *)
  nbuckets : int;
  (* Hot float state lives in a flat array, not record fields: a float
     field in a mixed record is boxed, so reads cost two loads and
     writes allocate. fq.(0) = wstart (bucket 0's left edge) ·
     fq.(1) = 1/width (the per-push divide is a multiply) ·
     fq.(2) = float nbuckets · fq.(3) = width *)
  fq : float array;
  mutable cur : int;  (* draining bucket; [nbuckets] = window exhausted *)
  mutable cur_sorted : bool;
  bt : float array array;  (* per-bucket times *)
  bs : int array array;  (* per-bucket seqs *)
  bv : int array array;  (* per-bucket slots *)
  blen : int array;
  bpos : int array;  (* drain position within the current bucket *)
  occ : int array;  (* occupancy bitmap, 32 buckets per word *)
  mutable ht : float array;  (* overflow heap, SoA *)
  mutable hs : int array;
  mutable hv : int array;
  mutable hsize : int;
  mutable count : int;
}

(* Narrow buckets keep each bucket's sort small and keep re-arms out of
   the insertion-into-current-bucket path even under thousands of
   outstanding events; the occupancy bitmap makes skipping the many
   empty buckets O(1), so sparse workloads don't pay for the width.
   16384 x 8 ns = a 131 us window before the overflow heap kicks in. *)
let default_nbuckets = 16384

let default_width = 8.0

let create ?(nbuckets = default_nbuckets) ?(width = default_width) () =
  if nbuckets <= 0 then invalid_arg "Evq.create: nbuckets must be positive";
  if not (width > 0.0) then invalid_arg "Evq.create: width must be positive";
  {
    key_in = Array.make 1 0.0;
    key_out = Array.make 1 0.0;
    out_seq = 0;
    nbuckets;
    fq = [| 0.0; 1.0 /. width; Stdlib.float_of_int nbuckets; width |];
    cur = 0;
    cur_sorted = false;
    bt = Array.make nbuckets [||];
    bs = Array.make nbuckets [||];
    bv = Array.make nbuckets [||];
    blen = Array.make nbuckets 0;
    bpos = Array.make nbuckets 0;
    occ = Array.make ((nbuckets + 31) / 32) 0;
    ht = [||];
    hs = [||];
    hv = [||];
    hsize = 0;
    count = 0;
  }

let length t = t.count

let is_empty t = t.count = 0

(* (t1, s1) < (t2, s2) in event order. Seqs are unique, so this is a
   strict total order. The annotations are load-bearing: without them
   [<] is the polymorphic compare, which boxes both floats at every
   call site and dwarfs the queue's entire allocation budget. *)
let[@inline] before (t1 : float) (s1 : int) (t2 : float) (s2 : int) =
  t1 < t2 || (t1 = t2 && s1 < s2)

(* ---------------- overflow heap ---------------- *)

let heap_grow t =
  let n = Stdlib.max 64 (2 * Array.length t.ht) in
  let ht = Array.make n 0.0 and hs = Array.make n 0 and hv = Array.make n 0 in
  Array.blit t.ht 0 ht 0 t.hsize;
  Array.blit t.hs 0 hs 0 t.hsize;
  Array.blit t.hv 0 hv 0 t.hsize;
  t.ht <- ht;
  t.hs <- hs;
  t.hv <- hv

(* The entry's time is read from [key_in] (staged by the caller of
   {!push}) rather than passed: a float argument to this non-inlined
   function would be boxed at every overflow push. *)
let heap_push t seq slot =
  if t.hsize >= Array.length t.ht then heap_grow t;
  let time = t.key_in.(0) in
  let ht = t.ht and hs = t.hs and hv = t.hv in
  let i = ref t.hsize in
  t.hsize <- t.hsize + 1;
  (* Sift up with the new entry held in registers: one store per level. *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before time seq ht.(parent) hs.(parent) then begin
      ht.(!i) <- ht.(parent);
      hs.(!i) <- hs.(parent);
      hv.(!i) <- hv.(parent);
      i := parent
    end
    else continue := false
  done;
  ht.(!i) <- time;
  hs.(!i) <- seq;
  hv.(!i) <- slot

(* Remove the heap minimum; the caller reads it from ht/hs/hv.(0) first. *)
let heap_drop_min t =
  t.hsize <- t.hsize - 1;
  let n = t.hsize in
  if n > 0 then begin
    let ht = t.ht and hs = t.hs and hv = t.hv in
    let time = ht.(n) and seq = hs.(n) and slot = hv.(n) in
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      if l >= n then continue := false
      else begin
        let r = l + 1 in
        let c =
          if r < n && before ht.(r) hs.(r) ht.(l) hs.(l) then r else l
        in
        if before ht.(c) hs.(c) time seq then begin
          ht.(!i) <- ht.(c);
          hs.(!i) <- hs.(c);
          hv.(!i) <- hv.(c);
          i := c
        end
        else continue := false
      end
    done;
    ht.(!i) <- time;
    hs.(!i) <- seq;
    hv.(!i) <- slot
  end

(* ---------------- occupancy bitmap ---------------- *)

(* Unchecked accesses throughout the occupancy/bucket/heap hot paths:
   every index is maintained internally (bucket indices are clamped to
   [0, nbuckets), positions are bounded by blen/bpos/hsize invariants,
   capacities by bucket_reserve/heap_grow), and these run several times
   per simulated event. *)

let[@inline] occ_set t b =
  let w = b lsr 5 in
  Array.unsafe_set t.occ w (Array.unsafe_get t.occ w lor (1 lsl (b land 31)))

let[@inline] occ_clear t b =
  let w = b lsr 5 in
  Array.unsafe_set t.occ w
    (Array.unsafe_get t.occ w land lnot (1 lsl (b land 31)))

(* Trailing-zero count of a nonzero value < 2^32 via the classic
   de Bruijn multiply (no ctz intrinsic in the compiler's portable
   subset). The product is masked to 32 bits before the shift because
   native ints are wider. *)
let ctz_table =
  let tbl = Array.make 32 0 in
  for i = 0 to 31 do
    tbl.((((1 lsl i) * 0x077CB531) land 0xFFFFFFFF) lsr 27) <- i
  done;
  tbl

let[@inline] ctz x =
  let lsb = x land -x in
  Array.unsafe_get ctz_table (((lsb * 0x077CB531) land 0xFFFFFFFF) lsr 27)

(* First occupied bucket >= [b], or [nbuckets] if none: one masked word
   test for the common dense case, then whole empty words are skipped
   32 buckets at a time. *)
let next_occupied t b =
  if b >= t.nbuckets then t.nbuckets
  else begin
    let nw = Array.length t.occ in
    let w = ref (b lsr 5) in
    let bits = ref (Array.unsafe_get t.occ !w land (-1 lsl (b land 31))) in
    while !bits = 0 && !w + 1 < nw do
      incr w;
      bits := Array.unsafe_get t.occ !w
    done;
    if !bits = 0 then t.nbuckets else (!w lsl 5) + ctz !bits
  end

(* ---------------- buckets ---------------- *)

let bucket_reserve t b need =
  let cap = Array.length t.bt.(b) in
  if need > cap then begin
    let n = Stdlib.max 8 (Stdlib.max need (2 * cap)) in
    let bt = Array.make n 0.0 and bs = Array.make n 0 and bv = Array.make n 0 in
    let len = t.blen.(b) in
    Array.blit t.bt.(b) 0 bt 0 len;
    Array.blit t.bs.(b) 0 bs 0 len;
    Array.blit t.bv.(b) 0 bv 0 len;
    t.bt.(b) <- bt;
    t.bs.(b) <- bs;
    t.bv.(b) <- bv
  end

(* Forced inline: [time] must not cross a real call boundary — a float
   argument to a non-inlined function is boxed (2 words), which is the
   entire per-event allocation budget. *)
let[@inline] bucket_append t b time seq slot =
  let len = Array.unsafe_get t.blen b in
  bucket_reserve t b (len + 1);
  Array.unsafe_set (Array.unsafe_get t.bt b) len time;
  Array.unsafe_set (Array.unsafe_get t.bs b) len seq;
  Array.unsafe_set (Array.unsafe_get t.bv b) len slot;
  Array.unsafe_set t.blen b (len + 1);
  occ_set t b

(* In-place quicksort of the triple arrays by (time, seq), insertion
   sort below a small cutoff, median-of-three pivot. Runs once per
   bucket, when the drain cursor reaches it. *)
(* Top level (not a local closure inside sort3): a closure capturing the
   three arrays would be allocated once per quicksort frame. Annotated
   so the array reads compile to unboxed monomorphic accesses. *)
let swap3 (ta : float array) (sa : int array) (va : int array) i j =
  let xt = ta.(i) and xs = sa.(i) and xv = va.(i) in
  ta.(i) <- ta.(j);
  sa.(i) <- sa.(j);
  va.(i) <- va.(j);
  ta.(j) <- xt;
  sa.(j) <- xs;
  va.(j) <- xv

let rec sort3 ta sa va lo hi =
  if hi - lo < 12 then
    for i = lo + 1 to hi do
      let kt = ta.(i) and ks = sa.(i) and kv = va.(i) in
      let j = ref (i - 1) in
      while !j >= lo && before kt ks ta.(!j) sa.(!j) do
        ta.(!j + 1) <- ta.(!j);
        sa.(!j + 1) <- sa.(!j);
        va.(!j + 1) <- va.(!j);
        decr j
      done;
      ta.(!j + 1) <- kt;
      sa.(!j + 1) <- ks;
      va.(!j + 1) <- kv
    done
  else begin
    let mid = lo + ((hi - lo) / 2) in
    if before ta.(mid) sa.(mid) ta.(lo) sa.(lo) then swap3 ta sa va lo mid;
    if before ta.(hi) sa.(hi) ta.(lo) sa.(lo) then swap3 ta sa va lo hi;
    if before ta.(hi) sa.(hi) ta.(mid) sa.(mid) then swap3 ta sa va mid hi;
    let pt = ta.(mid) and ps = sa.(mid) in
    let i = ref (lo - 1) and j = ref (hi + 1) in
    let p = ref (-1) in
    while !p < 0 do
      incr i;
      while before ta.(!i) sa.(!i) pt ps do
        incr i
      done;
      decr j;
      while before pt ps ta.(!j) sa.(!j) do
        decr j
      done;
      if !i >= !j then p := !j else swap3 ta sa va !i !j
    done;
    sort3 ta sa va lo !p;
    sort3 ta sa va (!p + 1) hi
  end

(* Place an entry into the sorted remainder [bpos, blen) of the bucket
   being drained (binary search + shift). Used for schedule-at-now and
   for any entry whose time lands at or before the drain cursor. Like
   {!heap_push}, the time comes from [key_in] — this path runs on every
   push while other events are outstanding, so a boxed float argument
   here would blow the per-event allocation budget. *)
let insert_current t seq slot =
  let time = Array.unsafe_get t.key_in 0 in
  let b = t.cur in
  let len = Array.unsafe_get t.blen b in
  bucket_reserve t b (len + 1);
  let ta = Array.unsafe_get t.bt b
  and sa = Array.unsafe_get t.bs b
  and va = Array.unsafe_get t.bv b in
  let lo = ref (Array.unsafe_get t.bpos b) and hi = ref len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if
      before (Array.unsafe_get ta mid) (Array.unsafe_get sa mid) time seq
    then lo := mid + 1
    else hi := mid
  done;
  let p = !lo in
  Array.blit ta p ta (p + 1) (len - p);
  Array.blit sa p sa (p + 1) (len - p);
  Array.blit va p va (p + 1) (len - p);
  Array.unsafe_set ta p time;
  Array.unsafe_set sa p seq;
  Array.unsafe_set va p slot;
  Array.unsafe_set t.blen b (len + 1);
  occ_set t b

(* ---------------- push / pop ---------------- *)

(* The time is staged in key_in.(0) (see the header comment). *)
let push t ~seq ~slot =
  let time = Array.unsafe_get t.key_in 0 in
  let fq = t.fq in
  let f = (time -. Array.unsafe_get fq 0) *. Array.unsafe_get fq 1 in
  if t.count = 0 then begin
    t.count <- 1;
    (* Empty queue: jump the cursor straight to the entry's bucket when
       it still fits the window (the common closed-loop case), else
       re-anchor the window at the entry. *)
    if f >= 0.0 && f < Array.unsafe_get fq 2 then begin
      let b = int_of_float f in
      t.cur <- b;
      t.cur_sorted <- false;
      bucket_append t b time seq slot
    end
    else begin
      Array.unsafe_set fq 0 time;
      t.cur <- 0;
      t.cur_sorted <- false;
      bucket_append t 0 time seq slot
    end
  end
  else begin
    t.count <- t.count + 1;
    if f >= Array.unsafe_get fq 2 || t.cur >= t.nbuckets then
      heap_push t seq slot
    else begin
      let b = int_of_float f in
      let b = if b < 0 then 0 else b in
      if b <= t.cur then
        if t.cur_sorted then insert_current t seq slot
        else bucket_append t t.cur time seq slot
      else bucket_append t b time seq slot
    end
  end

(* Re-anchor the window at the overflow minimum and migrate every heap
   entry that now falls inside it. Called with all buckets empty. *)
let advance_window t =
  let fq = t.fq in
  fq.(0) <- t.ht.(0);
  t.cur <- 0;
  t.cur_sorted <- false;
  let fmax = fq.(2) in
  let continue = ref true in
  while !continue && t.hsize > 0 do
    let time = t.ht.(0) in
    let f = (time -. fq.(0)) *. fq.(1) in
    if f >= fmax then continue := false
    else begin
      let seq = t.hs.(0) and slot = t.hv.(0) in
      heap_drop_min t;
      let b = int_of_float f in
      let b = if b < 0 then 0 else b in
      bucket_append t b time seq slot
    end
  done

(* Pop the minimum entry: returns its slot, or -1 when empty; the key
   is left in key_out.(0) / out_seq. *)
let rec pop t =
  if t.count = 0 then -1
  else if t.cur < t.nbuckets then begin
    let b = t.cur in
    if (not t.cur_sorted) && Array.unsafe_get t.blen b = 1 then begin
      (* Untouched single-entry bucket — the common case at this bucket
         width: emit directly, skipping the sort/bpos protocol. *)
      Array.unsafe_set t.key_out 0
        (Array.unsafe_get (Array.unsafe_get t.bt b) 0);
      t.out_seq <- Array.unsafe_get (Array.unsafe_get t.bs b) 0;
      let slot = Array.unsafe_get (Array.unsafe_get t.bv b) 0 in
      t.count <- t.count - 1;
      Array.unsafe_set t.blen b 0;
      occ_clear t b;
      t.cur <- next_occupied t (b + 1);
      slot
    end
    else pop_slow t b
  end
  else begin
    (* Window exhausted; count > 0 means the overflow heap is live. *)
    advance_window t;
    pop t
  end

and pop_slow t b =
  begin
    if not t.cur_sorted then begin
      if Array.unsafe_get t.blen b > 1 then
        sort3 t.bt.(b) t.bs.(b) t.bv.(b) 0 (t.blen.(b) - 1);
      Array.unsafe_set t.bpos b 0;
      t.cur_sorted <- true
    end;
    let p = Array.unsafe_get t.bpos b in
    let len = Array.unsafe_get t.blen b in
    if p < len then begin
      Array.unsafe_set t.key_out 0 (Array.unsafe_get (Array.unsafe_get t.bt b) p);
      t.out_seq <- Array.unsafe_get (Array.unsafe_get t.bs b) p;
      let slot = Array.unsafe_get (Array.unsafe_get t.bv b) p in
      t.count <- t.count - 1;
      let p' = p + 1 in
      if p' = len then begin
        Array.unsafe_set t.blen b 0;
        Array.unsafe_set t.bpos b 0;
        occ_clear t b;
        t.cur <- next_occupied t (b + 1);
        t.cur_sorted <- false
      end
      else Array.unsafe_set t.bpos b p';
      slot
    end
    else begin
      t.blen.(b) <- 0;
      t.bpos.(b) <- 0;
      occ_clear t b;
      t.cur <- next_occupied t (b + 1);
      t.cur_sorted <- false;
      pop t
    end
  end

(* Slots, times and seqs are scalars — clearing the counters is enough
   for the GC; the engine owns (and blanks) the payload pool. *)
let clear t =
  Array.fill t.blen 0 t.nbuckets 0;
  Array.fill t.bpos 0 t.nbuckets 0;
  Array.fill t.occ 0 (Array.length t.occ) 0;
  t.cur <- 0;
  t.cur_sorted <- false;
  t.fq.(0) <- 0.0;
  t.hsize <- 0;
  t.count <- 0
