(* Pooled, intrusive FIFO of parked processes.

   Entries are pooled per queue and linked through their own [next]
   field (the queue's [nil] sentinel terminates both the FIFO and the
   free list), and each entry embeds an {!Engine.park_cell}, so a
   steady-state park/wake cycle allocates nothing beyond the effect
   continuation and the [Some v] wake value — the old implementation
   additionally paid a register closure, a fired flag, a resume
   closure, an entry record, and a [Queue] cell per cycle. *)

type 'a entry = {
  cell : Engine.park_cell;
  mutable eslot : 'a option ref;
  mutable next : 'a entry;  (* FIFO / free-list link; nil terminates *)
}

type 'a t = {
  nil : 'a entry;  (* sentinel: list terminator, never parked *)
  mutable head : 'a entry;
  mutable tail : 'a entry;
  mutable free : 'a entry;
  mutable len : int;
}

let create () =
  let c = Engine.make_park_cell () in
  let s = ref None in
  let rec nil = { cell = c; eslot = s; next = nil } in
  { nil; head = nil; tail = nil; free = nil; len = 0 }

let is_empty q = q.len = 0

let length q = q.len

let park q slot =
  let nil = q.nil in
  let e =
    if q.free != nil then begin
      let e = q.free in
      q.free <- e.next;
      e.next <- nil;
      e.eslot <- slot;
      e
    end
    else { cell = Engine.make_park_cell (); eslot = slot; next = nil }
  in
  if q.head == nil then q.head <- e else q.tail.next <- e;
  q.tail <- e;
  q.len <- q.len + 1;
  Engine.park e.cell

let wake q v =
  let nil = q.nil in
  if q.head == nil then false
  else begin
    let e = q.head in
    q.head <- e.next;
    if q.head == nil then q.tail <- nil;
    q.len <- q.len - 1;
    e.eslot := Some v;
    Engine.unpark e.cell;
    (* The woken process never touches its entry again, so it can go
       straight back on the free list. *)
    e.next <- q.free;
    q.free <- e;
    true
  end

let wake_all q v =
  let n = q.len in
  for _ = 1 to n do
    ignore (wake q v)
  done;
  n
