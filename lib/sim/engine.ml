(* Discrete-event engine, zero-allocation hot path.

   Events live in an int-indexed pool: parallel arrays of tag / payload
   / int-arg, with the free list threaded through [args]. Scheduling
   reuses a slot and pushes (time, seq, slot) into the monomorphic
   {!Evq} calendar queue; dispatch switches on the tag instead of
   calling a megamorphic [unit -> unit] closure:

     tag 1  run a [unit -> unit] thunk (generic [schedule])
     tag 2  resume an effect continuation ([wait] / resumers)
     tag 3  call a preallocated [int -> unit] with the slot's int arg
            ({!timer} — the fully closure-free path)
     tag 4  start a process under the engine's effect handler ([spawn])

   Slots are freed (tag 0) before dispatch so the callback can
   reschedule straight into the slot it just vacated.

   Floats are kept out of function signatures on the hot path — an
   OCaml float crossing a non-inlined call is boxed — by staging times
   through [Evq.key_in]/[key_out] and keeping the engine's own hot
   floats (now, next_tick, tick period/base, the pending [wait] delay)
   in the flat [fl] array. The effect handler, its [Some callback]
   returns, and [Some t] for [current_engine] are all preallocated at
   {!create} time, so steady-state [timer] traffic allocates nothing
   and [wait] traffic allocates only the runtime's continuation. *)

type resumer = unit -> unit

type t = {
  evq : Evq.t;
  mutable seq : int;
  mutable executed : int;
  (* fl.(0) now · fl.(1) next_tick · fl.(2) tick_period ·
     fl.(3) tick_base · fl.(4) delay staged by [wait] for the handler *)
  fl : float array;
  mutable tick_fn : (float -> unit) option;
  mutable tick_k : int;  (* next boundary is base +. float k *. period *)
  (* event pool *)
  mutable tags : int array;
  mutable pays : Obj.t array;
  mutable args : int array;  (* tag 3 argument, or free-list next *)
  mutable free_head : int;  (* -1 = pool exhausted *)
  (* preallocated once per engine; mutable only for create-time tying *)
  mutable eff_handler : (unit, unit) Effect.Deep.handler;
  mutable wait_some : ((unit, unit) Effect.Deep.continuation -> unit) option;
  mutable susp_some : ((unit, unit) Effect.Deep.continuation -> unit) option;
  mutable park_some : ((unit, unit) Effect.Deep.continuation -> unit) option;
  mutable pending_register : resumer -> unit;
  mutable park_into : park_cell;
  mutable self_some : t option;
}

(* A reusable parking spot: the suspended continuation is stored
   directly in the cell, so park/unpark needs no per-use closure, ref
   cell, or queue node — only the continuation the runtime itself
   allocates at the perform. [peng] caches the owning engine (written
   once per cell in steady state) so {!unpark} works from outside any
   process, like a {!resumer} does. *)
and park_cell = { mutable pk : Obj.t; mutable peng : t option }

exception Stopped

(* Payload-free: the per-perform data rides in engine fields ([fl].(4)
   for the wait delay, [pending_register] for suspend) — a payload
   would allocate a tuple and box the float on every perform. The
   performing process always runs under its own engine's handler, so
   no owner field is needed to route the effect. *)
type _ Effect.t += Wait : unit Effect.t
type _ Effect.t += Suspend : unit Effect.t
type _ Effect.t += Park : unit Effect.t

(* The engine a process belongs to, used so [wait]/[suspend] need no
   explicit engine argument. Set for the dynamic extent of [run]/[step]
   (not per event — saving/restoring per event cost a [Fun.protect]
   closure on every dispatch). *)
let current_engine : t option ref = ref None

let dummy_pay : Obj.t = Obj.repr ()

let dummy_cell : park_cell = { pk = dummy_pay; peng = None }

let make_park_cell () = { pk = dummy_pay; peng = None }

let dummy_handler : (unit, unit) Effect.Deep.handler =
  {
    Effect.Deep.retc = (fun () -> ());
    exnc = raise;
    effc = (fun (type a) (_ : a Effect.t) -> None);
  }

(* ---------------- event pool ---------------- *)

let[@inline never] pool_grow t =
  let old = Array.length t.tags in
  let n = Stdlib.max 64 (2 * old) in
  let tags = Array.make n 0 in
  let pays = Array.make n dummy_pay in
  let args = Array.make n 0 in
  Array.blit t.tags 0 tags 0 old;
  Array.blit t.pays 0 pays 0 old;
  Array.blit t.args 0 args 0 old;
  for i = old to n - 1 do
    args.(i) <- i + 1
  done;
  args.(n - 1) <- -1;
  t.tags <- tags;
  t.pays <- pays;
  t.args <- args;
  t.free_head <- old

(* Grow only ever runs with the free list empty, so this returns a
   valid slot unconditionally. *)
let[@inline] alloc_slot t =
  if t.free_head < 0 then pool_grow t;
  let slot = t.free_head in
  t.free_head <- Array.unsafe_get t.args slot;
  slot

(* ---------------- construction ---------------- *)

let create () =
  let t =
    {
      evq = Evq.create ();
      seq = 0;
      executed = 0;
      fl = [| 0.0; Float.infinity; 0.0; 0.0; 0.0 |];
      tick_fn = None;
      tick_k = 0;
      tags = [||];
      pays = [||];
      args = [||];
      free_head = -1;
      eff_handler = dummy_handler;
      wait_some = None;
      susp_some = None;
      park_some = None;
      pending_register = (fun _ -> ());
      park_into = dummy_cell;
      self_some = None;
    }
  in
  t.self_some <- Some t;
  (* Handle Wait: pop the staged delay and park the continuation in a
     pooled tag-2 slot due at now + delay. Everything here is field
     traffic on [t] — no floats cross a call, nothing allocates. *)
  t.wait_some <-
    Some
      (fun k ->
        let fl = t.fl in
        let d = fl.(4) in
        let d = if d < 0.0 then 0.0 else d in
        let slot = alloc_slot t in
        t.tags.(slot) <- 2;
        t.pays.(slot) <- Obj.repr k;
        t.seq <- t.seq + 1;
        t.evq.Evq.key_in.(0) <- fl.(0) +. d;
        Evq.push t.evq ~seq:t.seq ~slot);
  (* Handle Suspend: hand the registered callback a one-shot resumer
     that schedules the continuation at resume-time [now]. This path
     allocates (the resumer closure escapes to arbitrary holders) —
     that is inherent to handing out a first-class resumer. *)
  t.susp_some <-
    Some
      (fun k ->
        let register = t.pending_register in
        t.pending_register <- (fun _ -> ());
        let fired = ref false in
        let resume () =
          if not !fired then begin
            fired := true;
            let slot = alloc_slot t in
            t.tags.(slot) <- 2;
            t.pays.(slot) <- Obj.repr k;
            t.seq <- t.seq + 1;
            t.evq.Evq.key_in.(0) <- t.fl.(0);
            Evq.push t.evq ~seq:t.seq ~slot
          end
        in
        register resume);
  (* Handle Park: stash the continuation in the caller-supplied cell.
     Pure field traffic — no event, no closure, no allocation beyond
     the continuation itself. *)
  t.park_some <-
    Some
      (fun k ->
        let c = t.park_into in
        t.park_into <- dummy_cell;
        c.pk <- Obj.repr k);
  let effc : type a.
      a Effect.t -> ((a, unit) Effect.Deep.continuation -> unit) option =
    function
    | Wait -> t.wait_some
    | Suspend -> t.susp_some
    | Park -> t.park_some
    | _ -> None
  in
  t.eff_handler <- { Effect.Deep.retc = (fun () -> ()); exnc = raise; effc };
  t

let now t = t.fl.(0)

(* ---------------- scheduling ---------------- *)

let schedule t time thunk =
  let slot = alloc_slot t in
  t.tags.(slot) <- 1;
  t.pays.(slot) <- Obj.repr thunk;
  t.seq <- t.seq + 1;
  t.evq.Evq.key_in.(0) <- time;
  Evq.push t.evq ~seq:t.seq ~slot

let timer t ~ns fn arg =
  let ns = if ns < 0 then 0 else ns in
  let slot = alloc_slot t in
  (* Unchecked: [slot] comes from the free list, always in bounds. *)
  Array.unsafe_set t.tags slot 3;
  Array.unsafe_set t.pays slot (Obj.repr fn);
  Array.unsafe_set t.args slot arg;
  t.seq <- t.seq + 1;
  Array.unsafe_set t.evq.Evq.key_in 0
    (Array.unsafe_get t.fl 0 +. Stdlib.float_of_int ns);
  Evq.push t.evq ~seq:t.seq ~slot

let spawn t ?name f =
  ignore name;
  let slot = alloc_slot t in
  t.tags.(slot) <- 4;
  t.pays.(slot) <- Obj.repr f;
  t.seq <- t.seq + 1;
  t.evq.Evq.key_in.(0) <- t.fl.(0);
  Evq.push t.evq ~seq:t.seq ~slot

let spawn_at t time f =
  let time = Stdlib.max time t.fl.(0) in
  let slot = alloc_slot t in
  t.tags.(slot) <- 4;
  t.pays.(slot) <- Obj.repr f;
  t.seq <- t.seq + 1;
  t.evq.Evq.key_in.(0) <- time;
  Evq.push t.evq ~seq:t.seq ~slot

(* ---------------- process-side API ---------------- *)

let engine_of_process () =
  match !current_engine with
  | Some t -> t
  | None -> invalid_arg "Engine.wait/suspend called outside a process"

let now_here () = (engine_of_process ()).fl.(0)

let wait d =
  let t = engine_of_process () in
  t.fl.(4) <- d;
  Effect.perform Wait

let suspend register =
  let t = engine_of_process () in
  t.pending_register <- register;
  Effect.perform Suspend

let park cell =
  let t = engine_of_process () in
  (match cell.peng with
  | Some e when e == t -> ()
  | _ -> cell.peng <- Some t);
  t.park_into <- cell;
  Effect.perform Park

(* One-shot like a resumer: the first unpark schedules the parked
   continuation at the owning engine's current time; later calls (or
   calls on an empty cell) are no-ops. *)
let unpark cell =
  if cell.pk != dummy_pay then
    match cell.peng with
    | None -> ()
    | Some t ->
        let k = cell.pk in
        cell.pk <- dummy_pay;
        let slot = alloc_slot t in
        t.tags.(slot) <- 2;
        t.pays.(slot) <- k;
        t.seq <- t.seq + 1;
        t.evq.Evq.key_in.(0) <- t.fl.(0);
        Evq.push t.evq ~seq:t.seq ~slot

let parked cell = cell.pk != dummy_pay

(* ---------------- ticks ---------------- *)

let set_tick t ~period f =
  if period <= 0.0 then invalid_arg "Engine.set_tick: period must be positive";
  let fl = t.fl in
  fl.(2) <- period;
  fl.(3) <- fl.(0);
  t.tick_k <- 1;
  t.tick_fn <- Some f;
  fl.(1) <- fl.(3) +. period

let clear_tick t =
  let fl = t.fl in
  fl.(2) <- 0.0;
  t.tick_fn <- None;
  fl.(1) <- Float.infinity

(* Fire the tick hook at every period boundary up to [time], then land
   the clock on [time]. Boundaries are derived as base + k*period — not
   accumulated with [+. period] per tick — so sample instants carry no
   cumulative rounding drift over long runs. Out of line: it runs only
   when a tick is installed and due. *)
let[@inline never] advance_ticks t time =
  let fl = t.fl in
  (match t.tick_fn with
  | Some f ->
      let period = fl.(2) in
      if period > 0.0 then
        while fl.(1) <= time do
          let b = fl.(1) in
          fl.(0) <- b;
          f b;
          t.tick_k <- t.tick_k + 1;
          fl.(1) <- fl.(3) +. (Stdlib.float_of_int t.tick_k *. period)
        done
  | None -> ());
  fl.(0) <- time

(* ---------------- dispatch ---------------- *)

let[@inline] dispatch t slot =
  (* Unchecked: [slot] was allocated from this pool and the pool never
     shrinks, so it is always in bounds. *)
  let tag = Array.unsafe_get t.tags slot in
  let pay = Array.unsafe_get t.pays slot in
  let arg = Array.unsafe_get t.args slot in
  (* Free before calling: the callback may reschedule into this slot. *)
  Array.unsafe_set t.tags slot 0;
  Array.unsafe_set t.pays slot dummy_pay;
  Array.unsafe_set t.args slot t.free_head;
  t.free_head <- slot;
  match tag with
  | 1 -> (Obj.obj pay : unit -> unit) ()
  | 2 ->
      Effect.Deep.continue
        (Obj.obj pay : (unit, unit) Effect.Deep.continuation)
        ()
  | 3 -> (Obj.obj pay : int -> unit) arg
  | 4 -> Effect.Deep.match_with (Obj.obj pay : unit -> unit) () t.eff_handler
  | _ -> assert false

(* Advance the clock to the just-popped event's time and run it. The
   no-tick case is two array cells compared and one store; the tick
   loop is out of line. *)
let[@inline] exec t slot =
  let fl = t.fl in
  let time = t.evq.Evq.key_out.(0) in
  if time >= fl.(1) then advance_ticks t time else fl.(0) <- time;
  t.executed <- t.executed + 1;
  dispatch t slot

(* ---------------- driving ---------------- *)

let step t =
  let slot = Evq.pop t.evq in
  if slot < 0 then false
  else begin
    let saved = !current_engine in
    current_engine := t.self_some;
    (match exec t slot with
    | () -> current_engine := saved
    | exception e ->
        current_engine := saved;
        raise e);
    true
  end

(* The hot loop costs exactly one queue operation per event; the
   [current_engine] save/restore happens once per [run], not per event.
   With an [until] bound the one event past the horizon is pushed back
   — it re-enters with its original (time, seq) key, so it re-lands in
   its exact slot — instead of peeking before every pop. *)
let run ?until t =
  let saved = !current_engine in
  current_engine := t.self_some;
  Fun.protect
    ~finally:(fun () -> current_engine := saved)
    (fun () ->
      match until with
      | None ->
          let rec drain () =
            let slot = Evq.pop t.evq in
            if slot >= 0 then begin
              exec t slot;
              drain ()
            end
          in
          drain ()
      | Some limit ->
          let rec drain () =
            let slot = Evq.pop t.evq in
            if slot >= 0 then
              if t.evq.Evq.key_out.(0) > limit then begin
                advance_ticks t limit;
                t.evq.Evq.key_in.(0) <- t.evq.Evq.key_out.(0);
                Evq.push t.evq ~seq:t.evq.Evq.out_seq ~slot
              end
              else begin
                exec t slot;
                drain ()
              end
          in
          drain ())

let active t = not (Evq.is_empty t.evq)

let events_executed t = t.executed

(* Blank the pool — not just the queue — so dropped events release
   their closures/continuations to the GC instead of pinning them in
   stale slots (the old heap-backed engine leaked exactly that way). *)
let stop_all t =
  Evq.clear t.evq;
  let n = Array.length t.tags in
  if n > 0 then begin
    Array.fill t.tags 0 n 0;
    Array.fill t.pays 0 n dummy_pay;
    for i = 0 to n - 1 do
      t.args.(i) <- i + 1
    done;
    t.args.(n - 1) <- -1;
    t.free_head <- 0
  end
