type resumer = unit -> unit

type key = { time : float; seq : int }

type t = {
  mutable now : float;
  events : (key, unit -> unit) Heap.t;
  mutable seq : int;
  mutable executed : int;
  (* Virtual-time sampling hook: fired at every multiple of
     [tick_period] crossed while advancing the clock. Deliberately NOT
     a heap event — a self-rescheduling sampler event would keep the
     engine alive forever and perturb [events_executed]; the hook rides
     on clock advancement instead, so enabling it cannot change a run's
     event count, ordering, or final virtual time. *)
  mutable tick_period : float;
  mutable tick_fn : (float -> unit) option;
  mutable next_tick : float;
}

exception Stopped

type _ Effect.t += Wait : (t * float) -> unit Effect.t
type _ Effect.t += Suspend : (t * (resumer -> unit)) -> unit Effect.t

(* The engine a process belongs to, used so [wait]/[suspend] need no
   explicit engine argument. Set for the dynamic extent of each event. *)
let current_engine : t option ref = ref None

let compare_key a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create () =
  {
    now = 0.0;
    events = Heap.create ~cmp:compare_key ();
    seq = 0;
    executed = 0;
    tick_period = 0.0;
    tick_fn = None;
    next_tick = Float.infinity;
  }

let now t = t.now

let set_tick t ~period f =
  if period <= 0.0 then invalid_arg "Engine.set_tick: period must be positive";
  t.tick_period <- period;
  t.tick_fn <- Some f;
  t.next_tick <- t.now +. period

let clear_tick t =
  t.tick_period <- 0.0;
  t.tick_fn <- None;
  t.next_tick <- Float.infinity

(* Advance the clock to [time], firing the tick hook at every period
   boundary crossed. The clock is set to the boundary before each call
   so hook code reading [now] sees the sample instant. *)
let advance t time =
  (match t.tick_fn with
  | Some f when t.tick_period > 0.0 ->
      while t.next_tick <= time do
        t.now <- t.next_tick;
        f t.next_tick;
        t.next_tick <- t.next_tick +. t.tick_period
      done
  | _ -> ());
  t.now <- time

let schedule t time thunk =
  t.seq <- t.seq + 1;
  Heap.push t.events { time; seq = t.seq } thunk

let handler t =
  let effc : type a. a Effect.t -> ((a, unit) Effect.Deep.continuation -> unit) option =
    function
    | Wait (owner, d) ->
        assert (owner == t);
        Some
          (fun k ->
            let d = if d < 0.0 then 0.0 else d in
            schedule t (t.now +. d) (fun () -> Effect.Deep.continue k ()))
    | Suspend (owner, register) ->
        assert (owner == t);
        Some
          (fun k ->
            let fired = ref false in
            let resume () =
              if not !fired then begin
                fired := true;
                schedule t t.now (fun () -> Effect.Deep.continue k ())
              end
            in
            register resume)
    | _ -> None
  in
  { Effect.Deep.retc = (fun () -> ()); exnc = raise; effc }

let spawn t ?name f =
  ignore name;
  schedule t t.now (fun () -> Effect.Deep.match_with f () (handler t))

let spawn_at t time f =
  let time = Stdlib.max time t.now in
  schedule t time (fun () -> Effect.Deep.match_with f () (handler t))

let engine_of_process () =
  match !current_engine with
  | Some t -> t
  | None -> invalid_arg "Engine.wait/suspend called outside a process"

let now_here () = (engine_of_process ()).now

let wait d =
  let t = engine_of_process () in
  Effect.perform (Wait (t, d))

let suspend register =
  let t = engine_of_process () in
  Effect.perform (Suspend (t, register))

let exec_event t k thunk =
  advance t k.time;
  t.executed <- t.executed + 1;
  let saved = !current_engine in
  current_engine := Some t;
  Fun.protect ~finally:(fun () -> current_engine := saved) thunk

let step t =
  match Heap.pop t.events with
  | None -> false
  | Some (k, thunk) ->
      exec_event t k thunk;
      true

(* The hot loop costs exactly one heap operation per event. With an
   [until] bound the one event past the horizon is pushed back — keys
   carry a unique sequence number, so it re-lands in its exact slot —
   instead of peeking before every pop. *)
let run ?until t =
  match until with
  | None ->
      let rec drain () =
        match Heap.pop t.events with
        | None -> ()
        | Some (k, thunk) ->
            exec_event t k thunk;
            drain ()
      in
      drain ()
  | Some limit ->
      let rec drain () =
        match Heap.pop t.events with
        | None -> ()
        | Some (k, thunk) ->
            if k.time > limit then begin
              advance t limit;
              Heap.push t.events k thunk
            end
            else begin
              exec_event t k thunk;
              drain ()
            end
      in
      drain ()

let active t = not (Heap.is_empty t.events)

let events_executed t = t.executed

let stop_all t = Heap.clear t.events
