(** Array-backed binary min-heap used as the simulator event queue. *)

type ('k, 'v) t

val create : cmp:('k -> 'k -> int) -> unit -> ('k, 'v) t

val length : ('k, 'v) t -> int

val is_empty : ('k, 'v) t -> bool

val push : ('k, 'v) t -> 'k -> 'v -> unit

val peek : ('k, 'v) t -> ('k * 'v) option

val pop : ('k, 'v) t -> ('k * 'v) option
(** Removes and returns the minimum-key entry. Ties are broken
    arbitrarily; callers needing stability must encode a sequence number
    in the key. *)

val clear : ('k, 'v) t -> unit
(** Drops all entries {e and} the backing arrays: cleared (and fully
    drained) heaps retain no references to previously stored keys or
    values, so the GC can reclaim them. *)

val to_sorted_list : ('k, 'v) t -> ('k * 'v) list
(** Non-destructive; for tests. *)
