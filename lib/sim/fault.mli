(** Deterministic fault injection for simulated devices.

    A fault plan is the single authority on {e when} a simulated device
    misbehaves. It combines steady-state probabilities (per device, with
    optional per-queue overrides) with a script of one-shot faults and
    offline windows pinned to absolute simulation times. All randomness
    comes from one SplitMix64 stream owned by the plan, so two runs with
    the same seed and the same submission sequence produce byte-identical
    fault traces — the property the robustness tests and
    [bench/exp_faults.ml] assert.

    The plan is policy-free: it only answers "what happens to this
    command?". Error propagation, retries and degraded-mode routing live
    in {!Lab_device.Device}, the driver LabMods and
    [Lab_runtime.Client]. *)

type fault =
  | Io_error  (** the command fails after its latency stage (media error) *)
  | Transient_timeout of float
      (** the command completes late by this many ns; [infinity] means it
          is lost in the controller and never completes *)
  | Torn_write of int
      (** only this many bytes of the write are persisted; the command
          completes with an error *)

type rates = {
  io_error : float;  (** per-command probability of {!Io_error} *)
  timeout : float;  (** per-command probability of a transient timeout *)
  timeout_delay_ns : float;  (** extra completion delay when one fires *)
  torn_write : float;
      (** per-write-command probability of a torn write; the persisted
          byte count is drawn uniformly from [\[0, bytes)] *)
}

val no_rates : rates
(** All probabilities zero: the plan never injects rate-based faults. *)

type event =
  | Offline of { from_ns : float; until_ns : float; queue : int option }
      (** the device ([queue = None]) or one hardware queue rejects every
          command submitted inside [\[from_ns, until_ns)] *)
  | One_shot of { at_ns : float; queue : int option; fault : fault }
      (** injected into the first matching command submitted at or after
          [at_ns]; consumed once *)

(** What the device should do with one command, decided at submission. *)
type decision =
  | Pass
  | Fail_io
  | Delay of float
  | Torn of int  (** bytes persisted, strictly less than requested *)
  | Reject_offline

type t

val create :
  ?rates:rates -> ?queue_rates:(int * rates) list -> ?script:event list -> seed:int -> unit -> t
(** [queue_rates] overrides [rates] for specific hardware queues. The
    script may be given in any order; one-shots are consumed in
    submission order among matching commands. *)

val none : unit -> t
(** A plan that never injects anything. *)

val decide : t -> now:float -> queue:int -> is_write:bool -> bytes:int -> decision
(** Decides the fate of a command of [bytes] bytes submitted at [now] on
    hardware queue [queue]. Records a trace entry and bumps the matching
    counter for every non-{!Pass} decision. *)

val offline : t -> now:float -> queue:int -> bool
(** Whether a scripted offline window covers [queue] at [now]. *)

val offline_windows : t -> (float * float * int option) list
(** The plan's scripted offline windows as [(from_ns, until_ns, queue)]
    triples ([queue = None] meaning the whole device) — the device-loss
    notification hook: {!Lab_device.Device} schedules abort and
    health-watcher events at these boundaries so layered services (the
    volume manager) can react to a leg loss instead of discovering it
    one failed command at a time. *)

(** {2 Observability} *)

val set_observer : t -> (now:float -> queue:int -> label:string -> unit) -> unit
(** Install an injection hook, called once per non-{!Pass} decision
    with a literal category label ([io_error], [timeout], [torn_write],
    [offline_reject]) — the flight recorder rides this to log injected
    faults and trigger black-box dumps. Purely observational: it must
    not perturb the run. *)

val injected : t -> (string * int) list
(** Counter snapshot: [io_error], [timeout], [torn_write],
    [offline_reject] — populated via {!Lab_sim.Stats.Counter}. *)

val injected_total : t -> int

val trace : t -> string list
(** Every injected fault, oldest first, one formatted line each. *)

val trace_to_string : t -> string
(** Newline-joined {!trace}; equal seeds and submission sequences give
    byte-identical strings. *)
