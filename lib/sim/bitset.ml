(* Dense bitset over 32-bit words with de Bruijn count-trailing-zeros
   iteration — the same trick as {!Evq}'s calendar occupancy bitmap,
   packaged for readiness tracking (e.g. which of a worker's thousands
   of queue pairs have doorbells pending). 32-bit words keep every
   value an immediate int on 64-bit OCaml and let one multiply index
   the ctz table. *)

type t = { mutable words : int array; mutable nbits : int }

let ctz_table =
  let tbl = Array.make 32 0 in
  for i = 0 to 31 do
    tbl.((((1 lsl i) * 0x077CB531) land 0xFFFFFFFF) lsr 27) <- i
  done;
  tbl

let[@inline] ctz x =
  let lsb = x land -x in
  Array.unsafe_get ctz_table (((lsb * 0x077CB531) land 0xFFFFFFFF) lsr 27)

let create nbits =
  let nbits = Stdlib.max 0 nbits in
  { words = Array.make (Stdlib.max 1 ((nbits + 31) lsr 5)) 0; nbits }

let capacity t = t.nbits

(* Growth keeps existing bits; [resize] is expected at reconfiguration
   time (queue reassignment), never on the per-event path. *)
let resize t nbits =
  let needed = Stdlib.max 1 ((nbits + 31) lsr 5) in
  if needed > Array.length t.words then begin
    let words = Array.make needed 0 in
    Array.blit t.words 0 words 0 (Array.length t.words);
    t.words <- words
  end;
  t.nbits <- Stdlib.max t.nbits nbits

let[@inline] set t i =
  let w = i lsr 5 in
  Array.unsafe_set t.words w
    (Array.unsafe_get t.words w lor (1 lsl (i land 31)))

let[@inline] clear t i =
  let w = i lsr 5 in
  Array.unsafe_set t.words w
    (Array.unsafe_get t.words w land lnot (1 lsl (i land 31)))

let[@inline] mem t i =
  Array.unsafe_get t.words (i lsr 5) land (1 lsl (i land 31)) <> 0

let clear_all t = Array.fill t.words 0 (Array.length t.words) 0

let is_empty t =
  let n = Array.length t.words in
  let rec go i = i >= n || (Array.unsafe_get t.words i = 0 && go (i + 1)) in
  go 0

(* First set bit at index >= [from], or -1. Reads words live (no
   snapshot): bits set behind the cursor during iteration are seen on
   the next scan, bits ahead of it on this one — matching a linear
   scan's semantics while skipping empty words. *)
let next_set t from =
  if from >= t.nbits then -1
  else begin
    let nw = Array.length t.words in
    let w = ref (from lsr 5) in
    (* Mask off bits below [from] in its own word. *)
    let first = Array.unsafe_get t.words !w land ((-1) lsl (from land 31)) in
    let bits = ref (first land 0xFFFFFFFF) in
    while !bits = 0 && !w + 1 < nw do
      incr w;
      bits := Array.unsafe_get t.words !w
    done;
    if !bits = 0 then -1
    else begin
      let i = (!w lsl 5) lor ctz !bits in
      if i >= t.nbits then -1 else i
    end
  end
