type fault =
  | Io_error
  | Transient_timeout of float
  | Torn_write of int

type rates = {
  io_error : float;
  timeout : float;
  timeout_delay_ns : float;
  torn_write : float;
}

let no_rates =
  { io_error = 0.0; timeout = 0.0; timeout_delay_ns = 0.0; torn_write = 0.0 }

type event =
  | Offline of { from_ns : float; until_ns : float; queue : int option }
  | One_shot of { at_ns : float; queue : int option; fault : fault }

type decision =
  | Pass
  | Fail_io
  | Delay of float
  | Torn of int
  | Reject_offline

type one_shot = { at_ns : float; os_queue : int option; os_fault : fault }

type t = {
  rng : Rng.t;
  rates : rates;
  queue_rates : (int * rates) list;
  windows : (float * float * int option) list;
  mutable pending : one_shot list;  (* sorted by at_ns, unconsumed *)
  mutable rev_trace : string list;
  mutable observer : (now:float -> queue:int -> label:string -> unit) option;
      (* injection hook: called once per injected (non-Pass) decision
         with a literal category label — the flight recorder rides it *)
  io_errors : Stats.Counter.c;
  timeouts : Stats.Counter.c;
  torn_writes : Stats.Counter.c;
  offline_rejects : Stats.Counter.c;
}

let create ?(rates = no_rates) ?(queue_rates = []) ?(script = []) ~seed () =
  let windows =
    List.filter_map
      (function
        | Offline { from_ns; until_ns; queue } -> Some (from_ns, until_ns, queue)
        | One_shot _ -> None)
      script
  in
  let pending =
    List.sort
      (fun a b -> Float.compare a.at_ns b.at_ns)
      (List.filter_map
         (function
           | One_shot { at_ns; queue; fault } ->
               Some { at_ns; os_queue = queue; os_fault = fault }
           | Offline _ -> None)
         script)
  in
  {
    rng = Rng.create seed;
    rates;
    queue_rates;
    windows;
    pending;
    rev_trace = [];
    observer = None;
    io_errors = Stats.Counter.create ();
    timeouts = Stats.Counter.create ();
    torn_writes = Stats.Counter.create ();
    offline_rejects = Stats.Counter.create ();
  }

let none () = create ~seed:0 ()

let offline_windows t = t.windows

let offline t ~now ~queue =
  List.exists
    (fun (from_ns, until_ns, q) ->
      now >= from_ns && now < until_ns
      && match q with None -> true | Some q -> q = queue)
    t.windows

let record t ~now ~queue label =
  t.rev_trace <- Printf.sprintf "%.0f q%d %s" now queue label :: t.rev_trace

let clamp_torn ~bytes n = Stdlib.max 0 (Stdlib.min n (bytes - 1))

(* Turn a scripted fault into a decision, downgrading write-only faults
   on read commands. *)
let decision_of_fault ~is_write ~bytes = function
  | Io_error -> Fail_io
  | Transient_timeout d -> Delay d
  | Torn_write n -> if is_write then Torn (clamp_torn ~bytes n) else Fail_io

let take_one_shot t ~now ~queue =
  let matches os =
    os.at_ns <= now
    && match os.os_queue with None -> true | Some q -> q = queue
  in
  let rec split acc = function
    | [] -> None
    | os :: rest when matches os ->
        t.pending <- List.rev_append acc rest;
        Some os.os_fault
    | os :: rest -> split (os :: acc) rest
  in
  split [] t.pending

let rates_for t queue =
  match List.assoc_opt queue t.queue_rates with
  | Some r -> r
  | None -> t.rates

let set_observer t f = t.observer <- Some f

let observe t ~now ~queue label =
  match t.observer with None -> () | Some f -> f ~now ~queue ~label

let count_and_trace t ~now ~queue ~bytes d =
  (match d with
  | Pass -> ()
  | Fail_io ->
      Stats.Counter.incr t.io_errors;
      record t ~now ~queue "io_error";
      observe t ~now ~queue "io_error"
  | Delay d ->
      Stats.Counter.incr t.timeouts;
      record t ~now ~queue
        (if Float.is_finite d then Printf.sprintf "timeout +%.0f" d
         else "timeout lost");
      observe t ~now ~queue "timeout"
  | Torn n ->
      Stats.Counter.incr t.torn_writes;
      record t ~now ~queue (Printf.sprintf "torn %d/%d" n bytes);
      observe t ~now ~queue "torn_write"
  | Reject_offline ->
      Stats.Counter.incr t.offline_rejects;
      record t ~now ~queue "offline_reject";
      observe t ~now ~queue "offline_reject");
  d

let decide t ~now ~queue ~is_write ~bytes =
  if offline t ~now ~queue then
    count_and_trace t ~now ~queue ~bytes Reject_offline
  else
    match take_one_shot t ~now ~queue with
    | Some f ->
        count_and_trace t ~now ~queue ~bytes
          (decision_of_fault ~is_write ~bytes f)
    | None ->
        let r = rates_for t queue in
        let torn = if is_write then r.torn_write else 0.0 in
        let total = r.io_error +. r.timeout +. torn in
        if total <= 0.0 then Pass
        else begin
          let u = Rng.float t.rng 1.0 in
          if u < r.io_error then count_and_trace t ~now ~queue ~bytes Fail_io
          else if u < r.io_error +. r.timeout then
            count_and_trace t ~now ~queue ~bytes (Delay r.timeout_delay_ns)
          else if u < total then
            count_and_trace t ~now ~queue ~bytes
              (Torn (clamp_torn ~bytes (Rng.int t.rng (Stdlib.max 1 bytes))))
          else Pass
        end

let injected t =
  [
    ("io_error", Stats.Counter.value t.io_errors);
    ("timeout", Stats.Counter.value t.timeouts);
    ("torn_write", Stats.Counter.value t.torn_writes);
    ("offline_reject", Stats.Counter.value t.offline_rejects);
  ]

let injected_total t = List.fold_left (fun acc (_, n) -> acc + n) 0 (injected t)

let trace t = List.rev t.rev_trace

let trace_to_string t = String.concat "\n" (trace t)
