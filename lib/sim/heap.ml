type ('k, 'v) t = {
  cmp : 'k -> 'k -> int;
  mutable keys : 'k array;
  mutable vals : 'v array;
  mutable size : int;
}

let create ~cmp () = { cmp; keys = [||]; vals = [||]; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let grow t k v =
  let n = Stdlib.max 64 (2 * Array.length t.keys) in
  let keys = Array.make n k and vals = Array.make n v in
  Array.blit t.keys 0 keys 0 t.size;
  Array.blit t.vals 0 vals 0 t.size;
  t.keys <- keys;
  t.vals <- vals

let swap t i j =
  let k = t.keys.(i) and v = t.vals.(i) in
  t.keys.(i) <- t.keys.(j);
  t.vals.(i) <- t.vals.(j);
  t.keys.(j) <- k;
  t.vals.(j) <- v

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.keys.(i) t.keys.(parent) < 0 then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.cmp t.keys.(l) t.keys.(!smallest) < 0 then smallest := l;
  if r < t.size && t.cmp t.keys.(r) t.keys.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t k v =
  if t.size >= Array.length t.keys then grow t k v;
  t.keys.(t.size) <- k;
  t.vals.(t.size) <- v;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some (t.keys.(0), t.vals.(0))

let pop t =
  if t.size = 0 then None
  else begin
    let k = t.keys.(0) and v = t.vals.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.keys.(0) <- t.keys.(t.size);
      t.vals.(0) <- t.vals.(t.size);
      (* Overwrite the vacated tail slot with a live entry so the heap
         retains no reference to the popped key/value — a generic heap
         has no dummy element to blank with, but duplicating the root
         pins only data the heap still owns. *)
      t.keys.(t.size) <- t.keys.(0);
      t.vals.(t.size) <- t.vals.(0);
      sift_down t 0
    end
    else begin
      (* Emptied: drop the backing arrays outright, else slot 0 (and
         any stale tail) would pin the last popped entries for the
         heap's lifetime. *)
      t.keys <- [||];
      t.vals <- [||]
    end;
    Some (k, v)
  end

let clear t =
  t.size <- 0;
  t.keys <- [||];
  t.vals <- [||]

let to_sorted_list t =
  let copy =
    {
      cmp = t.cmp;
      keys = Array.sub t.keys 0 (Stdlib.max t.size 0);
      vals = Array.sub t.vals 0 (Stdlib.max t.size 0);
      size = t.size;
    }
  in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some kv -> drain (kv :: acc)
  in
  drain []
