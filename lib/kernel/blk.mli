(** Simulated Linux block layer (multi-queue path).

    Submitting through the block layer allocates kernel request
    structures, runs the configured I/O scheduler to steer the request
    to a hardware dispatch queue, and — unless the caller polls —
    charges interrupt + wake-up costs on completion, as the real
    blk-mq path does. LabStor's Kernel Driver LabMod bypasses most of
    this via [submit_io_to_hctx]. *)

type sched =
  | Noop  (** steer to the queue of the originating core *)
  | Blk_switch  (** steer by per-queue load (blk-switch, NSDI'21) *)

type t

val create : Lab_sim.Machine.t -> Lab_device.Device.t -> sched:sched -> t

val device : t -> Lab_device.Device.t

val set_sched : t -> sched -> unit

val sched : t -> sched

val select_hctx : t -> thread:int -> bytes:int -> int
(** The scheduler decision, exposed for tests and for the userspace
    scheduler LabMods that reuse it. *)

val submit_bio_wait :
  t ->
  thread:int ->
  kind:Lab_device.Device.io_kind ->
  lba:int ->
  bytes:int ->
  polled:bool ->
  unit
(** Full kernel submission path, blocking until completion. [polled]
    models completion polling (no IRQ/wake-up charge). Runs in process
    context. *)

val submit_io_to_hctx :
  t ->
  thread:int ->
  hctx:int ->
  kind:Lab_device.Device.io_kind ->
  lba:int ->
  bytes:int ->
  on_complete:(unit -> unit) ->
  unit
(** LabStor's direct hardware-queue submission: skips the scheduler and
    the interrupt path (the caller polls for completion); still pays the
    kernel request allocation. Device faults are masked (legacy API);
    use {!submit_io_to_hctx_result} to observe them. *)

val submit_io_to_hctx_result :
  t ->
  thread:int ->
  hctx:int ->
  kind:Lab_device.Device.io_kind ->
  lba:int ->
  bytes:int ->
  on_complete:
    ((Lab_device.Device.completion, Lab_device.Device.error) result -> unit) ->
  unit
(** Like {!submit_io_to_hctx} but delivers the device outcome, so driver
    LabMods can propagate injected faults upstream. In-flight accounting
    ends on either outcome; a lost command (unbounded timeout) never
    completes and keeps its in-flight slot, mirroring the device. *)

val inflight : t -> int -> int
(** In-flight requests on a given hardware queue. *)

val note_dispatch : t -> hctx:int -> bytes:int -> unit
(** Manual in-flight accounting for callers that submit to the device
    directly (batched APIs); pair with {!note_completion}. *)

val note_completion : t -> hctx:int -> bytes:int -> unit
