open Lab_sim
open Lab_device

type sched = Noop | Blk_switch

type t = {
  machine : Machine.t;
  dev : Device.t;
  mutable scheduler : sched;
  inflight_reqs : int array;
  inflight_bytes : float array;
}

let create machine dev ~sched =
  let n = Device.n_hw_queues dev in
  {
    machine;
    dev;
    scheduler = sched;
    inflight_reqs = Array.make n 0;
    inflight_bytes = Array.make n 0.0;
  }

let device t = t.dev

let set_sched t s = t.scheduler <- s

let sched t = t.scheduler

let inflight t q = t.inflight_reqs.(q)

(* blk-switch separates latency-critical (small) requests from
   throughput requests: the last quarter of the hardware queues is
   reserved for small I/O, and within each class requests steer to the
   least-loaded queue. *)
let lq_threshold_bytes = 16384

let select_hctx t ~thread ~bytes =
  let n = Array.length t.inflight_reqs in
  match t.scheduler with
  | Noop -> thread mod n
  | Blk_switch ->
      let reserved = Stdlib.max 1 (n / 4) in
      let lo, hi =
        if bytes <= lq_threshold_bytes then (n - reserved, n - 1)
        else (0, n - reserved - 1)
      in
      let lo, hi = if lo > hi then (0, n - 1) else (lo, hi) in
      let best = ref lo in
      for q = lo to hi do
        if t.inflight_bytes.(q) < t.inflight_bytes.(!best) then best := q
      done;
      !best

let track_start t q bytes =
  t.inflight_reqs.(q) <- t.inflight_reqs.(q) + 1;
  t.inflight_bytes.(q) <- t.inflight_bytes.(q) +. Stdlib.float_of_int bytes

let track_end t q bytes =
  t.inflight_reqs.(q) <- t.inflight_reqs.(q) - 1;
  t.inflight_bytes.(q) <- t.inflight_bytes.(q) -. Stdlib.float_of_int bytes

let note_dispatch t ~hctx ~bytes = track_start t hctx bytes

let note_completion t ~hctx ~bytes = track_end t hctx bytes

let submit_bio_wait t ~thread ~kind ~lba ~bytes ~polled =
  let costs = t.machine.Machine.costs in
  (* Request allocation + scheduler bookkeeping. *)
  Machine.compute t.machine ~thread (costs.Costs.kalloc_ns +. costs.Costs.lock_ns);
  let q = select_hctx t ~thread ~bytes in
  track_start t q bytes;
  ignore (Device.submit_wait t.dev ~hctx:q ~kind ~lba ~bytes);
  track_end t q bytes;
  if not polled then
    (* IRQ handling plus waking and rescheduling the blocked thread. *)
    Machine.compute t.machine ~thread
      (costs.Costs.interrupt_ns +. costs.Costs.wakeup_ns)
  else
    (* One poll iteration notices the completion. *)
    Engine.wait costs.Costs.poll_spin_ns

let submit_io_to_hctx t ~thread ~hctx ~kind ~lba ~bytes ~on_complete =
  let costs = t.machine.Machine.costs in
  Machine.compute t.machine ~thread costs.Costs.kalloc_ns;
  track_start t hctx bytes;
  Device.submit t.dev ~hctx ~kind ~lba ~bytes ~on_complete:(fun _ ->
      track_end t hctx bytes;
      on_complete ())

let submit_io_to_hctx_result t ~thread ~hctx ~kind ~lba ~bytes ~on_complete =
  let costs = t.machine.Machine.costs in
  Machine.compute t.machine ~thread costs.Costs.kalloc_ns;
  track_start t hctx bytes;
  Device.submit_result t.dev ~hctx ~kind ~lba ~bytes ~on_complete:(fun r ->
      track_end t hctx bytes;
      on_complete r)
