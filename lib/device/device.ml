open Lab_sim

type io_kind = Read | Write

type completion = {
  c_kind : io_kind;
  c_lba : int;
  c_bytes : int;
  c_submitted : float;
  c_completed : float;
}

type error = E_io | E_offline | E_timeout | E_torn of int

(* Offline maps to ENODEV — "no such device" — so upper layers can
   tell a fail-over condition (the device is gone, requeue or switch
   mirror legs) from a retryable media error (EIO). *)
let error_to_string = function
  | E_io -> "EIO"
  | E_offline -> "ENODEV"
  | E_timeout -> "ETIMEDOUT"
  | E_torn n -> Printf.sprintf "ETORN(%d persisted)" n

type health_event = Went_offline of { until_ns : float } | Came_online

type request = {
  kind : io_kind;
  lba : int;
  bytes : int;
  submitted : float;
  fault : Fault.decision;  (* drawn from the fault plan at submit time *)
  on_complete : (completion, error) result -> unit;
}

type transfer_item = { treq : request; tbytes : int; resume : unit -> unit }

type t = {
  name : string;
  engine : Engine.t;
  profile : Profile.t;
  queues : request Mailbox.t array;
  channels : Semaphore.t;
  (* Shared-bandwidth stage: one server draining per-hctx transfer
     queues round-robin, as NVMe controllers arbitrate across
     submission queues — a loaded queue cannot starve the others. *)
  transfer_queues : transfer_item Queue.t array;
  transfer_bell : unit Waitq.t;
  mutable last_lba : int;  (* head position, for seek modelling *)
  mutable outstanding : int;
  flush_waiters : unit Waitq.t;
  mutable completed_reads : int;
  mutable completed_writes : int;
  mutable completed_errors : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
  service : Stats.t;
  mutable faults : Fault.t option;
  mutable health_watchers : (health_event -> unit) list;
}

let name t = t.name

let profile t = t.profile

let engine t = t.engine

let n_hw_queues t = Array.length t.queues

let outstanding t = t.outstanding

let completed_reads t = t.completed_reads

let completed_writes t = t.completed_writes

let completed_errors t = t.completed_errors

let fault_plan t = t.faults

let add_health_watcher t f = t.health_watchers <- f :: t.health_watchers

let notify_health t ev = List.iter (fun f -> f ev) (List.rev t.health_watchers)

let bytes_read t = t.bytes_read

let bytes_written t = t.bytes_written

let service_stats t = t.service

let reset_stats t =
  t.completed_reads <- 0;
  t.completed_writes <- 0;
  t.completed_errors <- 0;
  t.bytes_read <- 0;
  t.bytes_written <- 0;
  Stats.clear t.service

let latency_of t kind =
  match kind with
  | Read -> t.profile.Profile.read_latency_ns
  | Write -> t.profile.Profile.write_latency_ns

(* A command is sequential if it starts where the previous one ended. *)
let seek_cost t lba bytes =
  if t.profile.Profile.avg_seek_ns <= 0.0 then 0.0
  else begin
    let block = t.profile.Profile.block_size in
    let here = t.last_lba in
    let next = lba + ((bytes + block - 1) / block) in
    t.last_lba <- next;
    if lba = here then 0.0 else t.profile.Profile.avg_seek_ns
  end

let finish t req result =
  Stats.add t.service (Engine.now t.engine -. req.submitted);
  (match result with
  | Ok _ -> (
      match req.kind with
      | Read ->
          t.completed_reads <- t.completed_reads + 1;
          t.bytes_read <- t.bytes_read + req.bytes
      | Write ->
          t.completed_writes <- t.completed_writes + 1;
          t.bytes_written <- t.bytes_written + req.bytes)
  | Error (E_torn n) ->
      (* A torn write persisted a prefix: account only those bytes. *)
      t.completed_errors <- t.completed_errors + 1;
      if req.kind = Write then t.bytes_written <- t.bytes_written + n
  | Error _ -> t.completed_errors <- t.completed_errors + 1);
  t.outstanding <- t.outstanding - 1;
  if t.outstanding = 0 then ignore (Waitq.wake_all t.flush_waiters ());
  req.on_complete result

let completion_of t req =
  {
    c_kind = req.kind;
    c_lba = req.lba;
    c_bytes = req.bytes;
    c_submitted = req.submitted;
    c_completed = Engine.now t.engine;
  }

let offline_now t qidx =
  match t.faults with
  | None -> false
  | Some plan -> Fault.offline plan ~now:(Engine.now t.engine) ~queue:qidx

let service t qidx req () =
  let transfer nbytes =
    (* Transfer stage: enqueue on this hctx's transfer queue and wait
       for the round-robin arbiter to move the payload. *)
    if nbytes > 0 then
      Engine.suspend (fun resume ->
          Queue.add { treq = req; tbytes = nbytes; resume } t.transfer_queues.(qidx);
          ignore (Waitq.wake t.transfer_bell ()))
  in
  match req.fault with
  | Fault.Fail_io ->
      (* Media error: the command occupies a channel for its nominal
         latency, transfers nothing, completes with an error. *)
      Engine.wait (latency_of t req.kind);
      Semaphore.release t.channels;
      finish t req (Error E_io)
  | Fault.Delay d when not (Float.is_finite d) ->
      (* Lost command: it never completes. Release the channel so the
         rest of the device keeps serving; [outstanding] stays elevated
         on purpose — recovering is the client deadline's job. *)
      Engine.wait (latency_of t req.kind);
      Semaphore.release t.channels;
      Engine.suspend (fun _ -> ())
  | Fault.Torn n ->
      Engine.wait (latency_of t req.kind +. seek_cost t req.lba req.bytes);
      Semaphore.release t.channels;
      transfer n;
      finish t req (Error (E_torn n))
  | Fault.Pass | Fault.Delay _ | Fault.Reject_offline ->
      (* Reject_offline is handled at submit time and never reaches the
         queues; a finite Delay serves normally after the extra wait. *)
      let extra = match req.fault with Fault.Delay d -> d | _ -> 0.0 in
      Engine.wait (latency_of t req.kind +. seek_cost t req.lba req.bytes +. extra);
      Semaphore.release t.channels;
      if offline_now t qidx then
        (* The device went offline while this command was in service:
           it completes with an error instead of data (the in-flight
           half of device-loss semantics; queued commands are aborted
           by [abort_queued]). *)
        finish t req (Error E_offline)
      else begin
        transfer req.bytes;
        finish t req (Ok (completion_of t req))
      end

(* The bandwidth arbiter: round-robin over the per-hctx transfer
   queues, except that small commands form an urgent class (NVMe
   weighted-round-robin arbitration) and are served ahead of bulk
   transfers; parks when everything is drained. *)
let urgent_bytes = 16384

let transfer_arbiter t () =
  let n = Array.length t.transfer_queues in
  let cursor = ref 0 in
  let take_urgent () =
    let found = ref None in
    for i = 0 to n - 1 do
      if !found = None then begin
        let idx = (!cursor + i) mod n in
        let q = t.transfer_queues.(idx) in
        match Queue.peek_opt q with
        | Some item when item.tbytes <= urgent_bytes ->
            found := Queue.take_opt q;
            (* Keep the scan fair: continue after the queue served. *)
            cursor := (idx + 1) mod n
        | _ -> ()
      end
    done;
    !found
  in
  let rec round_robin tries =
    if tries = n then None
    else begin
      let q = t.transfer_queues.(!cursor) in
      cursor := (!cursor + 1) mod n;
      match Queue.take_opt q with
      | Some item -> Some item
      | None -> round_robin (tries + 1)
    end
  in
  let next_item _ =
    match take_urgent () with Some i -> Some i | None -> round_robin 0
  in
  while true do
    match next_item 0 with
    | Some item ->
        Engine.wait
          (Stdlib.float_of_int item.tbytes /. t.profile.Profile.bandwidth_bytes_per_ns);
        item.resume ()
    | None ->
        let slot = ref None in
        Waitq.park t.transfer_bell slot
  done

(* One dispatcher per hardware queue: enforces FIFO service *start*
   within the queue while the channel semaphore caps global
   parallelism. *)
let dispatcher t qidx () =
  let q = t.queues.(qidx) in
  while true do
    let req = Mailbox.get q in
    Semaphore.acquire t.channels;
    Engine.spawn t.engine (service t qidx req)
  done

(* Device loss must not leave queued commands waiting on a dead
   controller: at an offline window's start every not-yet-dispatched
   command on a covered queue completes with [E_offline] (commands
   already in service error out when their latency elapses, see
   [service]). *)
let abort_queued t ~queue =
  let drain qidx =
    let rec go () =
      match Mailbox.try_get t.queues.(qidx) with
      | None -> ()
      | Some req ->
          finish t req (Error E_offline);
          go ()
    in
    go ()
  in
  match queue with
  | Some q -> drain (q mod Array.length t.queues)
  | None -> Array.iteri (fun i _ -> drain i) t.queues

let set_fault_plan t plan =
  t.faults <- Some plan;
  (* Schedule the plan's scripted offline windows as device events:
     queued-command abort at each window start, plus health-watcher
     notifications at whole-device loss and return — the hook layered
     services (the volume manager) use to degrade and rebuild. *)
  let now = Engine.now t.engine in
  List.iter
    (fun (from_ns, until_ns, queue) ->
      Engine.spawn_at t.engine (Float.max now from_ns) (fun () ->
          abort_queued t ~queue;
          if queue = None then notify_health t (Went_offline { until_ns }));
      if queue = None && Float.is_finite until_ns then
        Engine.spawn_at t.engine (Float.max now until_ns) (fun () ->
            notify_health t Came_online))
    (Fault.offline_windows plan)

let create ?(name = "dev") engine profile =
  let open Profile in
  let t =
    {
      name;
      engine;
      profile;
      queues = Array.init profile.n_hw_queues (fun _ -> Mailbox.create ());
      channels = Semaphore.create profile.n_channels;
      transfer_queues = Array.init profile.n_hw_queues (fun _ -> Queue.create ());
      transfer_bell = Waitq.create ();
      last_lba = 0;
      outstanding = 0;
      flush_waiters = Waitq.create ();
      completed_reads = 0;
      completed_writes = 0;
      completed_errors = 0;
      bytes_read = 0;
      bytes_written = 0;
      service = Stats.create ();
      faults = None;
      health_watchers = [];
    }
  in
  for i = 0 to profile.n_hw_queues - 1 do
    Engine.spawn engine (dispatcher t i)
  done;
  Engine.spawn engine (transfer_arbiter t);
  t

(* Maximum data per command (MDTS): larger operations are split into a
   train of commands so one huge transfer cannot monopolize the
   bandwidth arbiter — the mechanism that keeps latency-sensitive
   queues usable next to bulk streams. *)
let max_transfer_bytes = 256 * 1024

(* Aggregating chunk errors: the whole operation reports the most
   severe outcome (offline > media error > timeout > torn), and a torn
   verdict carries the total bytes actually persisted across chunks —
   never more than were requested. *)
let error_rank = function
  | E_offline -> 3
  | E_io -> 2
  | E_timeout -> 1
  | E_torn _ -> 0

let submit_result t ~hctx ~kind ~lba ~bytes ~on_complete =
  if bytes <= 0 then invalid_arg "Device.submit: bytes must be positive";
  let hctx = hctx mod Array.length t.queues in
  let block = t.profile.Profile.block_size in
  let nchunks = (bytes + max_transfer_bytes - 1) / max_transfer_bytes in
  let remaining = ref nchunks in
  let worst = ref None in
  let persisted = ref 0 in
  let last_completion = ref None in
  let note e =
    match !worst with
    | Some w when error_rank w >= error_rank e -> ()
    | _ -> worst := Some e
  in
  let chunk_done len result =
    (match result with
    | Ok c ->
        last_completion := Some c;
        persisted := !persisted + len
    | Error (E_torn n) ->
        persisted := !persisted + n;
        note (E_torn n)
    | Error e -> note e);
    decr remaining;
    if !remaining = 0 then
      match !worst with
      | None ->
          let c =
            match !last_completion with Some c -> c | None -> assert false
          in
          on_complete (Ok { c with c_bytes = bytes; c_lba = lba })
      | Some (E_torn _) -> on_complete (Error (E_torn !persisted))
      | Some e -> on_complete (Error e)
  in
  for i = 0 to nchunks - 1 do
    let off = i * max_transfer_bytes in
    let len = Stdlib.min max_transfer_bytes (bytes - off) in
    let now = Engine.now t.engine in
    let fault =
      match t.faults with
      | None -> Fault.Pass
      | Some plan ->
          Fault.decide plan ~now ~queue:hctx
            ~is_write:(match kind with Write -> true | Read -> false)
            ~bytes:len
    in
    match fault with
    | Fault.Reject_offline ->
        (* The queue is offline: fail fast without entering the device —
           no channel, no outstanding slot. Deliver asynchronously so
           the submit path stays non-blocking. *)
        Engine.spawn t.engine (fun () -> chunk_done len (Error E_offline))
    | _ ->
        t.outstanding <- t.outstanding + 1;
        let req =
          {
            kind;
            lba = lba + (off / block);
            bytes = len;
            submitted = now;
            fault;
            on_complete = chunk_done len;
          }
        in
        Mailbox.put t.queues.(hctx) req
  done

let submit_wait_result t ~hctx ~kind ~lba ~bytes =
  let result = ref None in
  Engine.suspend (fun resume ->
      submit_result t ~hctx ~kind ~lba ~bytes ~on_complete:(fun r ->
          result := Some r;
          resume ()));
  match !result with Some r -> r | None -> assert false

(* Legacy always-Ok API: callers predating the fault plan get a
   fabricated completion on error so they still make progress; the
   error remains visible in [completed_errors]. *)
let submit t ~hctx ~kind ~lba ~bytes ~on_complete =
  let submitted = Engine.now t.engine in
  submit_result t ~hctx ~kind ~lba ~bytes ~on_complete:(function
    | Ok c -> on_complete c
    | Error _ ->
        on_complete
          {
            c_kind = kind;
            c_lba = lba;
            c_bytes = bytes;
            c_submitted = submitted;
            c_completed = Engine.now t.engine;
          })

let submit_wait t ~hctx ~kind ~lba ~bytes =
  let result = ref None in
  Engine.suspend (fun resume ->
      submit t ~hctx ~kind ~lba ~bytes ~on_complete:(fun c ->
          result := Some c;
          resume ()));
  match !result with Some c -> c | None -> assert false

let flush t =
  if t.outstanding > 0 then begin
    let slot = ref None in
    Waitq.park t.flush_waiters slot
  end
