(** Simulated storage device with multi-queue submission.

    The service model has two stages. A command first occupies one of
    [n_channels] latency slots (modelling internal parallelism: flash
    channels, PMEM banks, a disk's single actuator), then transfers its
    payload through the device's shared bandwidth. Small requests are
    therefore latency-bound but scale with parallel submission; large
    requests are bandwidth-bound regardless of queue count — matching
    the qualitative behaviour the paper's Figure 6 depends on.

    Requests submitted to the same hardware queue begin service in FIFO
    order. HDDs additionally pay a seek whenever a command's LBA is not
    contiguous with the previous command. *)

type t

type io_kind = Read | Write

type completion = {
  c_kind : io_kind;
  c_lba : int;
  c_bytes : int;
  c_submitted : float;
  c_completed : float;
}

type error =
  | E_io  (** media error: command consumed its latency, moved no data *)
  | E_offline
      (** queue/device offline window: rejected at submission, or the
          device disappeared while the command was queued/in service *)
  | E_timeout  (** reserved for upper layers fabricating deadline misses *)
  | E_torn of int
      (** torn write: only this many bytes were persisted — always
          strictly fewer than requested *)

val error_to_string : error -> string
(** [E_io] is ["EIO"] (retryable media error) and [E_offline] is
    ["ENODEV"] (the device is gone: requeue elsewhere or fail over to a
    mirror leg) — distinct errnos so retry logic can tell the cases
    apart. *)

val create : ?name:string -> Lab_sim.Engine.t -> Profile.t -> t
(** [name] identifies this device instance (e.g. one mirror leg) in
    metrics and volume-manager topology; defaults to ["dev"]. *)

val name : t -> string

val set_fault_plan : t -> Lab_sim.Fault.t -> unit
(** Installs a deterministic fault plan; every subsequently submitted
    command consults it (per chunk, at submission time). Without a plan
    the device is fault-free and behaves exactly as before.

    The plan's scripted offline windows additionally become device
    events: when a window opens, commands still queued on a covered
    hardware queue complete immediately with [E_offline] and commands
    already in service error out when their latency elapses — nothing
    hangs on a dead controller. Whole-device windows also fire the
    {!add_health_watcher} callbacks at their start and end. *)

val fault_plan : t -> Lab_sim.Fault.t option

(** Device-loss notifications, fired for whole-device offline windows
    ([queue = None]) of the installed fault plan. *)
type health_event =
  | Went_offline of { until_ns : float }
  | Came_online

val add_health_watcher : t -> (health_event -> unit) -> unit
(** Registers a callback run in simulated-event context at whole-device
    loss and return; watchers registered before the event fires (e.g.
    at mount time for a boot-time plan) see every transition. *)

val profile : t -> Profile.t

val engine : t -> Lab_sim.Engine.t

val n_hw_queues : t -> int

val submit_result :
  t ->
  hctx:int ->
  kind:io_kind ->
  lba:int ->
  bytes:int ->
  on_complete:((completion, error) result -> unit) ->
  unit
(** Asynchronous submission; [on_complete] fires in device context with
    the command's outcome. [hctx] is taken modulo the queue count.
    Operations larger than the per-command transfer limit are split
    into chunks; the reported outcome is the most severe chunk error
    (offline > media error > torn), with [E_torn] carrying the total
    bytes persisted. A command hit by an unbounded transient timeout is
    {e lost}: [on_complete] never fires — recovering from that is the
    client deadline's job. *)

val submit_wait_result :
  t -> hctx:int -> kind:io_kind -> lba:int -> bytes:int ->
  (completion, error) result
(** Blocking variant of {!submit_result}. *)

val submit :
  t ->
  hctx:int ->
  kind:io_kind ->
  lba:int ->
  bytes:int ->
  on_complete:(completion -> unit) ->
  unit
(** Legacy always-Ok API: like {!submit_result} but faults are masked —
    on error a fabricated completion is delivered so callers without an
    error path still make progress ([completed_errors] still counts the
    fault). New code should use {!submit_result}. *)

val submit_wait : t -> hctx:int -> kind:io_kind -> lba:int -> bytes:int -> completion
(** Blocking submission: suspends the calling process until the command
    completes. Faults masked as in {!submit}. *)

val flush : t -> unit
(** Suspends the caller until every outstanding command has completed
    (fsync semantics at the device level). *)

val outstanding : t -> int

(** Observability counters. *)

val completed_reads : t -> int

val completed_writes : t -> int

val completed_errors : t -> int
(** Commands that completed with an injected fault (media errors and
    torn writes; offline rejections are counted by the fault plan, lost
    commands never complete). *)

val bytes_read : t -> int

val bytes_written : t -> int

val service_stats : t -> Lab_sim.Stats.t
(** Per-command service times (submission to completion), ns. *)

val reset_stats : t -> unit
