#!/bin/sh
# Repo health check: build everything, run every test suite, run the
# experiment smokes (each asserts its own acceptance criteria and exits
# nonzero on violation), then gate the BENCH_*.json artifacts against
# the committed baselines with bench_diff (>10% regression fails).
# Usage: bin/check.sh  (or: make check)
set -eu
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build @all

echo "== dune runtest =="
dune runtest

echo "== fault-injection smoke (LABSTOR_SMOKE=1) =="
LABSTOR_SMOKE=1 dune exec bench/main.exe -- faults

echo "== batching smoke (LABSTOR_SMOKE=1) =="
LABSTOR_SMOKE=1 dune exec bench/main.exe -- batching

echo "== cache smoke (--smoke) =="
dune exec bench/main.exe -- cache --smoke
test -s BENCH_cache.json
dune exec bin/bench_diff.exe -- bench/baselines/BENCH_cache.json BENCH_cache.json

echo "== anatomy2 smoke (--smoke) =="
# Asserts per-request stage/e2e reconciliation and zero overhead when
# tracing is off; exits nonzero on violation.
dune exec bench/main.exe -- anatomy2 --smoke
test -s BENCH_anatomy.json
dune exec bin/bench_diff.exe -- bench/baselines/BENCH_anatomy.json BENCH_anatomy.json

echo "== profile smoke (--smoke) =="
# Asserts dedicated > time-shared worker utilization, byte-identical
# same-seed profile export, and sampler neutrality.
dune exec bench/main.exe -- profile --smoke
test -s BENCH_profile.json
dune exec bin/bench_diff.exe -- bench/baselines/BENCH_profile.json BENCH_profile.json

echo "== lvm smoke (--smoke) =="
# Asserts mirror availability under single-leg loss, bounded degraded
# p99, rebuild completion (frac = 1.0), journal-replay consistency and
# same-seed determinism; exits nonzero on violation.
dune exec bench/main.exe -- lvm --smoke
test -s BENCH_lvm.json
dune exec bin/bench_diff.exe -- bench/baselines/BENCH_lvm.json BENCH_lvm.json

echo "== sim smoke (--smoke) =="
# Asserts the pooled timer path stays within 2 minor words/event in
# steady state and that back-to-back runs execute identical event
# sequences; exits nonzero on violation.
dune exec bench/main.exe -- sim --smoke
test -s BENCH_sim.json
dune exec bin/bench_diff.exe -- bench/baselines/BENCH_sim.json BENCH_sim.json

echo "== qos smoke (--smoke) =="
# Asserts O(1)-in-tenant-count DRR dispatch on the 2-words/op budget,
# weighted fairness, noisy-neighbor read-p99 isolation (<= 1.5x) and
# same-seed determinism; exits nonzero on violation.
dune exec bench/main.exe -- qos --smoke
test -s BENCH_qos.json
dune exec bin/bench_diff.exe -- bench/baselines/BENCH_qos.json BENCH_qos.json

echo "== load smoke (--smoke) =="
# Asserts CO-corrected p99 agrees with naive within 10% below the knee
# and diverges >= 5x past saturation, monotone achieved throughput,
# and same-seed determinism; exits nonzero on violation. The curve
# arrays in BENCH_load.json are gated per-point (with *_band widening)
# and for monotone-direction preservation by bench_diff.
dune exec bench/main.exe -- load --smoke
test -s BENCH_load.json
dune exec bin/bench_diff.exe -- bench/baselines/BENCH_load.json BENCH_load.json

echo "== exemplars smoke (--smoke) =="
# Asserts capture-off runs are byte-identical to no-obs runs (and
# capture-on runs engine-neutral), >= 90% of the slowest 0.1% of
# completions hold exemplars with telescoping stage anatomy, a
# scripted outage leaves an errno:ENODEV black-box dump containing its
# own trigger event, and same-seed reruns are byte-identical; exits
# nonzero on violation.
dune exec bench/main.exe -- exemplars --smoke
test -s BENCH_exemplars.json
dune exec bin/bench_diff.exe -- bench/baselines/BENCH_exemplars.json BENCH_exemplars.json

echo "== labstor_cli metrics smoke =="
dune exec bin/labstor_cli.exe -- metrics --ops 200 --threads 2 > /dev/null
test -s out/metrics.jsonl

echo "== labstor_cli profile/top smoke =="
dune exec bin/labstor_cli.exe -- profile --ops 200 --threads 2 > /dev/null
test -s out/profile.json
dune exec bin/labstor_cli.exe -- top --ops 200 --threads 2 > /dev/null

echo "== labstor_cli exemplars/blackbox smoke =="
dune exec bin/labstor_cli.exe -- exemplars --ops 200 --threads 2 > /dev/null
test -s out/exemplars.json
dune exec bin/labstor_cli.exe -- blackbox --ops 200 --threads 2 > /dev/null
test -s out/blackbox.json
grep -q '"reason":"errno:ENODEV"' out/blackbox.json

echo "== labstor_cli qos smoke =="
dune exec bin/labstor_cli.exe -- qos --tenants 4 --ops 50 --noisy > /dev/null

echo "== labstor_cli load smoke =="
dune exec bin/labstor_cli.exe -- load --rate 100 --total 500 --slo-p99 100 > /dev/null

echo "check: OK"
