#!/bin/sh
# Repo health check: build everything, run every test suite, then run
# the fault-injection experiment in its ~2 s smoke configuration (which
# also asserts trace determinism and exits nonzero on divergence).
# Usage: bin/check.sh  (or: make check)
set -eu
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build @all

echo "== dune runtest =="
dune runtest

echo "== fault-injection smoke (LABSTOR_SMOKE=1) =="
LABSTOR_SMOKE=1 dune exec bench/main.exe -- faults

echo "== batching smoke (LABSTOR_SMOKE=1) =="
LABSTOR_SMOKE=1 dune exec bench/main.exe -- batching

echo "== cache smoke (--smoke) =="
dune exec bench/main.exe -- cache --smoke
test -s BENCH_cache.json

echo "== anatomy2 smoke (--smoke) =="
# Asserts per-request stage/e2e reconciliation and zero overhead when
# tracing is off; exits nonzero on violation.
dune exec bench/main.exe -- anatomy2 --smoke
test -s BENCH_anatomy.json

echo "== labstor_cli metrics smoke =="
dune exec bin/labstor_cli.exe -- metrics --ops 200 --threads 2 > /dev/null
test -s metrics.jsonl

echo "check: OK"
