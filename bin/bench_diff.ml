(* bench_diff — regression gate over the BENCH_*.json artifacts.

   Usage: bench_diff BASELINE FRESH [THRESHOLD]

   Parses both files with a minimal JSON reader, flattens every
   numeric leaf to a dotted path ("stages[3].mean_ns"), and compares
   fresh against baseline: any leaf whose relative difference exceeds
   THRESHOLD (default 0.10) fails the run, as does a leaf present in
   one file but not the other. Booleans count as 0/1 so a flipped
   acceptance flag ("deterministic_export": false) always trips the
   gate. The simulator is deterministic, so on an unchanged tree the
   comparison is exact; the threshold only absorbs intentional small
   retunings.

   Two refinements for curve-shaped artifacts:

   - A baseline key "<name>_band" (a scalar fraction) widens the
     per-leaf threshold for "<name>" and its array points "<name>[i]"
     to max(THRESHOLD, band). Band keys are gate configuration, not
     metrics: they are never themselves compared or reported NEW.

   - Arrays named "*_curve" must preserve the baseline's monotone
     direction: if the baseline curve is non-decreasing
     (resp. non-increasing), the fresh one must be too, within the
     curve's per-point tolerance. A knee curve that starts regressing
     mid-sweep trips the gate even if every point is inside its band.

   Exit 0 = within threshold; 1 = regression; 2 = usage/parse error. *)

(* ---------------- minimal JSON ---------------- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> fail "unterminated escape"
          | Some c ->
              advance ();
              (match c with
              | 'n' -> Buffer.add_char buf '\n'
              | 't' -> Buffer.add_char buf '\t'
              | 'r' -> Buffer.add_char buf '\r'
              | 'u' ->
                  (* keep the escape verbatim; paths never need it *)
                  Buffer.add_string buf "\\u"
              | c -> Buffer.add_char buf c);
              loop ())
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let numchar = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when numchar c -> true | _ -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match float_of_string_opt tok with
    | Some f -> Num f
    | None -> fail (Printf.sprintf "bad number %S" tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (elements [])
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing content";
  v

(* ---------------- flatten ---------------- *)

let flatten (j : json) : (string * float) list =
  let out = ref [] in
  let rec go path = function
    | Null | Str _ -> ()
    | Bool b -> out := (path, if b then 1.0 else 0.0) :: !out
    | Num f -> out := (path, f) :: !out
    | Arr l ->
        List.iteri (fun i v -> go (Printf.sprintf "%s[%d]" path i) v) l
    | Obj members ->
        List.iter
          (fun (k, v) ->
            go (if path = "" then k else path ^ "." ^ k) v)
          members
  in
  go "" j;
  List.rev !out

(* Curves: arrays of numbers whose key ends in "_curve", keyed by the
   same dotted path flatten gives their elements (minus the [i]). *)
let curves (j : json) : (string * float list) list =
  let out = ref [] in
  let num_of = function Num f -> Some f | Bool b -> Some (if b then 1.0 else 0.0) | _ -> None in
  let rec go path = function
    | Null | Bool _ | Num _ | Str _ -> ()
    | Arr l ->
        (match
           if String.length path >= 6 && Filename.check_suffix path "_curve"
           then
             List.fold_left
               (fun acc v ->
                 match (acc, num_of v) with
                 | Some xs, Some f -> Some (f :: xs)
                 | _ -> None)
               (Some []) l
           else None
         with
        | Some xs -> out := (path, List.rev xs) :: !out
        | None ->
            List.iteri (fun i v -> go (Printf.sprintf "%s[%d]" path i) v) l)
    | Obj members ->
        List.iter
          (fun (k, v) -> go (if path = "" then k else path ^ "." ^ k) v)
          members
  in
  go "" j;
  List.rev !out

(* ---------------- compare ---------------- *)

(* Relative difference with a small absolute guard: metrics that hover
   near zero (utilization of an idle worker, a residual) would
   otherwise flag on nanoscopic absolute change. *)
let abs_guard = 1e-6

let rel_diff base fresh =
  let denom = Float.max (Float.abs base) abs_guard in
  Float.abs (fresh -. base) /. denom

let () =
  let usage () =
    prerr_endline "usage: bench_diff BASELINE FRESH [THRESHOLD]";
    exit 2
  in
  let baseline_path, fresh_path, threshold =
    match Array.to_list Sys.argv with
    | [ _; b; f ] -> (b, f, 0.10)
    | [ _; b; f; t ] -> (
        match float_of_string_opt t with
        | Some t when t >= 0.0 -> (b, f, t)
        | _ -> usage ())
    | _ -> usage ()
  in
  let read path =
    let ic =
      try open_in_bin path
      with Sys_error e ->
        Printf.eprintf "bench_diff: %s\n" e;
        exit 2
    in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match parse text with
    | j -> j
    | exception Parse_error m ->
        Printf.eprintf "bench_diff: %s: %s\n" path m;
        exit 2
  in
  let base_json = read baseline_path and fresh_json = read fresh_path in
  let base = flatten base_json and fresh = flatten fresh_json in
  (* "<name>_band" keys in the BASELINE are per-metric tolerance
     overrides for "<name>" (and its points "<name>[i]"), not metrics. *)
  let is_band path = Filename.check_suffix path "_band" in
  let bands =
    List.filter_map
      (fun (path, v) ->
        if is_band path then
          Some (String.sub path 0 (String.length path - 5), v)
        else None)
      base
  in
  let leaf_threshold path =
    let covered (prefix, band) =
      if path = prefix || String.starts_with ~prefix:(prefix ^ "[") path then
        Some band
      else None
    in
    match List.find_map covered bands with
    | Some band -> Float.max threshold band
    | None -> threshold
  in
  (* Failures accumulate with a drift magnitude so the exit summary can
     rank them: structural problems (MISSING/NEW) outrank any numeric
     drift. *)
  let failures = ref [] in
  let flag ~drift fmt =
    Printf.ksprintf
      (fun m ->
        failures := (drift, m) :: !failures;
        print_endline m)
      fmt
  in
  List.iter
    (fun (path, b) ->
      if not (is_band path) then
        match List.assoc_opt path fresh with
        | None ->
            flag ~drift:infinity "MISSING  %-40s baseline=%g (absent in fresh)"
              path b
        | Some f ->
            let t = leaf_threshold path in
            let d = rel_diff b f in
            if d > t then
              flag ~drift:d
                "REGRESS  %-40s baseline=%g fresh=%g (%+.1f%%, allowed ±%.0f%%)"
                path b f
                (100.0 *. (f -. b) /. Float.max (Float.abs b) abs_guard)
                (100.0 *. t))
    base;
  List.iter
    (fun (path, f) ->
      if (not (is_band path)) && List.assoc_opt path base = None then
        flag ~drift:infinity "NEW      %-40s fresh=%g (absent in baseline)"
          path f)
    fresh;
  (* Monotone-direction preservation for "*_curve" arrays: the fresh
     curve must keep the direction the baseline establishes, each step
     within the curve's per-point tolerance. *)
  let directions l =
    let up = ref true and down = ref true in
    List.iteri
      (fun i x ->
        if i > 0 then begin
          let prev = List.nth l (i - 1) in
          if x < prev then up := false;
          if x > prev then down := false
        end)
      l;
    (!up, !down)
  in
  let monotone_within slack cmp l =
    let ok = ref true in
    List.iteri
      (fun i x ->
        if i > 0 then
          let prev = List.nth l (i - 1) in
          let tol = slack *. Float.max (Float.abs prev) abs_guard in
          if not (cmp x prev tol) then ok := false)
      l;
    !ok
  in
  let non_decr slack l = monotone_within slack (fun x p tol -> x >= p -. tol) l in
  let non_incr slack l = monotone_within slack (fun x p tol -> x <= p +. tol) l in
  let fresh_curves = curves fresh_json in
  List.iter
    (fun (path, bl) ->
      match List.assoc_opt path fresh_curves with
      | None -> () (* absence already reported leaf-by-leaf *)
      | Some fl ->
          let slack = leaf_threshold path in
          let up, down = directions bl in
          if up && not down && not (non_decr slack fl) then
            flag ~drift:infinity
              "MONOTONE %-40s baseline non-decreasing, fresh regresses \
               mid-curve" path
          else if down && not up && not (non_incr slack fl) then
            flag ~drift:infinity
              "MONOTONE %-40s baseline non-increasing, fresh rises \
               mid-curve" path
          else if up && down && not (non_decr slack fl || non_incr slack fl)
          then
            flag ~drift:infinity
              "MONOTONE %-40s baseline constant, fresh is non-monotone"
              path)
    (curves base_json);
  match !failures with
  | [] ->
      Printf.printf "bench_diff: %s vs %s: %d metrics within %.0f%%\n"
        baseline_path fresh_path (List.length base) (100.0 *. threshold)
  | fs ->
      (* Rank by drift so the culprit is the first thing on screen even
         when a cascade trips dozens of leaves: the biggest numeric
         drifts (structural breaks first) are usually the cause, the
         rest downstream noise. *)
      let ranked =
        List.stable_sort (fun (a, _) (b, _) -> Float.compare b a) (List.rev fs)
      in
      let n = List.length fs in
      Printf.printf "worst %d of %d drifting leaves:\n" (Stdlib.min 5 n) n;
      List.iteri
        (fun i (_, line) -> if i < 5 then Printf.printf "  %d. %s\n" (i + 1) line)
        ranked;
      Printf.printf
        "bench_diff: %d of %d metric(s) outside %.0f%% of %s — if intentional, \
         regenerate the baseline from a smoke run and commit it\n"
        n (List.length base) (100.0 *. threshold) baseline_path;
      exit 1
