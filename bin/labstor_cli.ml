(* labstor_cli — the utility-command surface of the deployment model:
   validate LabStack specs, mount them on a simulated platform and drive
   workloads against them, and inspect the stock LabMod inventory.

   Examples:
     labstor_cli validate my-stack.yaml
     labstor_cli run --stack my-stack.yaml --ops 5000 --bytes 4096
     labstor_cli run --stack my-stack.yaml --config runtime.yaml --threads 4
     labstor_cli mods *)

open Labstor
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ---------------- shared report tables ---------------- *)

(* Every inspection subcommand prints the same two shapes: a
   "  label       k=v, k=v" counter row and a name-aligned value table. *)

let counter_cells pairs =
  String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) pairs)

let print_counter_row ?(suffix = "") label pairs =
  Printf.printf "  %-13s %s%s\n" label (counter_cells pairs) suffix

let print_value_table rows =
  let w = List.fold_left (fun acc (k, _) -> Stdlib.max acc (String.length k)) 0 rows in
  List.iter (fun (k, v) -> Printf.printf "  %-*s  %s\n" w k v) rows

(* ---------------- validate ---------------- *)

let validate_cmd =
  let spec_file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SPEC" ~doc:"LabStack YAML file")
  in
  let run spec_file =
    match Core.Stack_spec.parse (read_file spec_file) with
    | Error e ->
        Printf.eprintf "parse error: %s\n" e;
        exit 1
    | Ok spec -> (
        (* Validate against the stock implementations. *)
        let platform = Platform.boot () in
        let reg = Runtime.Runtime.registry (Platform.runtime platform) in
        let mod_type_of name =
          Option.map
            (fun f ->
              let probe = f ~uuid:"__probe__" ~attrs:[] in
              probe.Core.Labmod.mod_type)
            (Core.Registry.find_factory reg name)
        in
        match Core.Stack_spec.validate spec ~mod_type_of with
        | Error e ->
            Printf.eprintf "invalid stack: %s\n" e;
            exit 1
        | Ok () ->
            Printf.printf "%s: valid LabStack (%s execution)\n"
              spec.Core.Stack_spec.mount
              (match spec.Core.Stack_spec.rules.Core.Stack_spec.exec_mode with
              | Core.Stack_spec.Sync -> "sync"
              | Core.Stack_spec.Async -> "async");
            List.iter
              (fun (v : Core.Stack_spec.vertex) ->
                Printf.printf "  %-16s %-16s -> %s\n" v.Core.Stack_spec.uuid
                  v.Core.Stack_spec.mod_name
                  (match v.Core.Stack_spec.outputs with
                  | [] -> "(sink)"
                  | outs -> String.concat ", " outs))
              spec.Core.Stack_spec.dag)
  in
  Cmd.v (Cmd.info "validate" ~doc:"Parse and validate a LabStack specification")
    Term.(const run $ spec_file)

(* ---------------- run ---------------- *)

let parse_run_config = function
  | None -> Runtime.Runtime.default_config
  | Some f -> (
      match Runtime.Run_config.parse (read_file f) with
      | Ok c -> c
      | Error e ->
          Printf.eprintf "config error: %s\n" e;
          exit 1)

let run_cmd =
  let stack_file =
    Arg.(required & opt (some file) None & info [ "stack" ] ~docv:"SPEC" ~doc:"LabStack YAML file")
  in
  let config_file =
    Arg.(value & opt (some file) None & info [ "config" ] ~docv:"CONF" ~doc:"Runtime configuration YAML")
  in
  let ops = Arg.(value & opt int 2000 & info [ "ops" ] ~doc:"operations per thread") in
  let bytes = Arg.(value & opt int 4096 & info [ "bytes" ] ~doc:"bytes per write") in
  let threads = Arg.(value & opt int 1 & info [ "threads" ] ~doc:"client threads") in
  let run stack_file config_file ops bytes threads =
    let config = parse_run_config config_file in
    let machine = Sim.Machine.create ~ncores:24 () in
    let nvme = Device.Device.create machine.Sim.Machine.engine Device.Profile.nvme in
    let backend = Mods.Mods_env.backend_of_device machine nvme in
    let config =
      { config with Runtime.Runtime.worker_core_base = 24 - config.Runtime.Runtime.nworkers }
    in
    let rt =
      Runtime.Runtime.create machine ~config ~backends:[ ("nvme", backend) ]
        ~default_backend:"nvme" ()
    in
    Runtime.Runtime.start rt;
    let spec_text = read_file stack_file in
    let mount =
      match Runtime.Runtime.mount_text rt spec_text with
      | Ok stack -> stack.Core.Stack.mount
      | Error e ->
          Printf.eprintf "mount error: %s\n" e;
          exit 1
    in
    let result = ref None in
    Sim.Machine.spawn machine (fun () ->
        let t0 = Sim.Machine.now machine in
        let finished = ref 0 in
        Sim.Engine.suspend (fun resume ->
            for th = 0 to threads - 1 do
              Sim.Engine.spawn machine.Sim.Machine.engine (fun () ->
                  let c =
                    Runtime.Client.connect rt ~pid:(100 + th) ~uid:1000 ~thread:th ()
                  in
                  for i = 1 to ops do
                    let path = Printf.sprintf "%s/t%d-f%d" mount th i in
                    (match Runtime.Client.create c path with
                    | Ok () -> ()
                    | Error e -> failwith e);
                    match Runtime.Client.open_file c path with
                    | Ok fd ->
                        ignore (Runtime.Client.pwrite c ~fd ~off:0 ~bytes);
                        ignore (Runtime.Client.close c fd)
                    | Error e -> failwith e
                  done;
                  incr finished;
                  if !finished = threads then resume ())
            done);
        result := Some (Sim.Machine.now machine -. t0);
        Sim.Engine.stop_all machine.Sim.Machine.engine);
    Sim.Machine.run machine;
    match !result with
    | Some elapsed ->
        let total_ops = 3 * ops * threads in
        Printf.printf "%s: %d ops in %.2f ms (simulated) -> %.1f kops/s, %.1f MiB written\n"
          mount total_ops (elapsed /. 1e6)
          (float_of_int total_ops /. (elapsed /. 1e9) /. 1000.0)
          (float_of_int (ops * threads * bytes) /. 1048576.0)
    | None ->
        Printf.eprintf "workload did not complete\n";
        exit 1
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Mount a LabStack on a simulated NVMe machine and drive a create/write/close workload")
    Term.(const run $ stack_file $ config_file $ ops $ bytes $ threads)

(* ---------------- faults ---------------- *)

let faults_stack_spec =
  {|
mount: "blk::/dev/sim"
rules:
  exec_mode: async
dag:
  - uuid: sched0
    mod: noop_sched
    outputs: [drv0]
  - uuid: drv0
    mod: kernel_driver
|}

let faults_cmd =
  let rate =
    Arg.(value & opt float 0.01 & info [ "rate" ] ~doc:"per-command I/O-error probability")
  in
  let timeout_rate =
    Arg.(value & opt float 0.0 & info [ "timeout-rate" ] ~doc:"per-command transient-timeout probability")
  in
  let torn_rate =
    Arg.(value & opt float 0.0 & info [ "torn-rate" ] ~doc:"per-write torn-write probability")
  in
  let seed = Arg.(value & opt int 0xC0FFEE & info [ "seed" ] ~doc:"fault-plan and workload seed") in
  let ops = Arg.(value & opt int 2000 & info [ "ops" ] ~doc:"block writes per thread") in
  let bytes = Arg.(value & opt int 4096 & info [ "bytes" ] ~doc:"bytes per write") in
  let threads = Arg.(value & opt int 4 & info [ "threads" ] ~doc:"client threads") in
  let trace = Arg.(value & flag & info [ "trace" ] ~doc:"print the full fault trace") in
  let run rate timeout_rate torn_rate seed ops bytes threads trace =
    let rates =
      {
        Sim.Fault.io_error = rate;
        timeout = timeout_rate;
        timeout_delay_ns = 200_000.0;
        torn_write = torn_rate;
      }
    in
    let platform = Platform.boot ~nworkers:4 ~seed ~fault_rates:rates () in
    (match Platform.mount platform faults_stack_spec with
    | Ok _ -> ()
    | Error e ->
        Printf.eprintf "mount error: %s\n" e;
        exit 1);
    let machine = Platform.machine platform in
    let lat = Sim.Stats.create () in
    let failed = ref 0 in
    let clients = ref [] in
    Platform.go platform (fun () ->
        let finished = ref 0 in
        Sim.Engine.suspend (fun resume ->
            for th = 0 to threads - 1 do
              Sim.Engine.spawn machine.Sim.Machine.engine (fun () ->
                  let c = Platform.client platform ~thread:th () in
                  clients := c :: !clients;
                  let rng = Sim.Rng.create (seed lxor (th * 7919)) in
                  for _ = 1 to ops do
                    let lba = Sim.Rng.int rng 262144 in
                    let t0 = Sim.Machine.now machine in
                    match
                      Runtime.Client.write_block c ~mount:"blk::/dev/sim" ~lba ~bytes
                    with
                    | Ok _ -> Sim.Stats.add lat (Sim.Machine.now machine -. t0)
                    | Error _ -> incr failed
                  done;
                  incr finished;
                  if !finished = threads then resume ())
            done));
    let elapsed = Platform.now platform in
    let total = ops * threads in
    Printf.printf "fault sweep: %d writes x %d B, io_error=%.4f timeout=%.4f torn=%.4f seed=%#x\n"
      total bytes rate timeout_rate torn_rate seed;
    Printf.printf "  throughput    %.1f kIOPS (%.2f ms simulated)\n"
      (float_of_int total /. (elapsed /. 1e9) /. 1000.0)
      (elapsed /. 1e6);
    Printf.printf "  latency       p50 %.1f us  p99 %.1f us\n"
      (Sim.Stats.percentile lat 50.0 /. 1e3)
      (Sim.Stats.percentile lat 99.0 /. 1e3);
    Printf.printf "  failed        %d of %d surfaced to the application\n" !failed total;
    Printf.printf
      "  errno         EIO/ETORN = transient media error (client retries in \
       place); ENODEV = device offline (fail-over: client requeues, mirrors \
       degrade)\n";
    (match Platform.fault_plan platform Device.Profile.Nvme with
    | Some plan ->
        print_counter_row "injected"
          ~suffix:(Printf.sprintf " (total %d)" (Sim.Fault.injected_total plan))
          (Sim.Fault.injected plan);
        if trace then List.iter (fun l -> Printf.printf "    %s\n" l) (Sim.Fault.trace plan)
    | None -> ());
    let sum f = List.fold_left (fun acc c -> acc + f c) 0 !clients in
    print_counter_row "client policy"
      [
        ("retries", sum Runtime.Client.retries);
        ("requeues", sum Runtime.Client.requeues);
        ("deadline_misses", sum Runtime.Client.deadline_misses);
        ("exhausted", sum Runtime.Client.exhausted_retries);
      ]
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:"Drive a block workload against a device with a deterministic fault plan and report fault/retry counters")
    Term.(const run $ rate $ timeout_rate $ torn_rate $ seed $ ops $ bytes $ threads $ trace)

(* ---------------- lvm ---------------- *)

let lvm_stack_spec =
  {|
mount: "blk::/vol"
dag:
  - uuid: lvm0
    mod: lab_lvm
    attrs:
      raid: 1
      legs: [nvme, nvme2]
|}

let lvm_cmd =
  let extents =
    Arg.(value & opt int 32 & info [ "extents" ] ~doc:"1 MiB extents to populate")
  in
  let ops = Arg.(value & opt int 200 & info [ "ops" ] ~doc:"reads per thread per phase") in
  let threads = Arg.(value & opt int 4 & info [ "threads" ] ~doc:"client threads") in
  let seed = Arg.(value & opt int 0x1074 & info [ "seed" ] ~doc:"workload seed") in
  let rate =
    Arg.(value & opt float 400.0
         & info [ "rebuild-rate" ] ~docv:"MBPS" ~doc:"resilver copy-rate cap in MB/s")
  in
  let journal = Arg.(value & flag & info [ "journal" ] ~doc:"print the redo journal") in
  let run extents ops threads seed rate journal =
    let extent_blocks = 2048 in
    let platform =
      Platform.boot ~nworkers:4 ~seed ~lvm_rebuild_rate_mbps:rate
        ~devices:[ Device.Profile.Nvme; Device.Profile.Nvme ]
        ()
    in
    (match Platform.mount platform lvm_stack_spec with
    | Ok _ -> ()
    | Error e ->
        Printf.eprintf "mount error: %s\n" e;
        exit 1);
    let machine = Platform.machine platform in
    let mount = "blk::/vol" in
    let span = extents * extent_blocks in
    let failures = ref 0 in
    let run_phase f =
      Platform.go platform (fun () ->
          let finished = ref 0 in
          Sim.Engine.suspend (fun resume ->
              for th = 0 to threads - 1 do
                Sim.Engine.spawn machine.Sim.Machine.engine (fun () ->
                    let c = Platform.client platform ~thread:th () in
                    f th c;
                    incr finished;
                    if !finished = threads then resume ())
              done))
    in
    let read_loop th c n key =
      let rng = Sim.Rng.create (seed lxor (th * key)) in
      for _ = 1 to n do
        let lba = Sim.Rng.int rng span in
        match Runtime.Client.read_block c ~mount ~lba ~bytes:4096 with
        | Ok _ -> ()
        | Error _ -> incr failures
      done
    in
    (* Populate the mirror, then read while healthy. *)
    run_phase (fun th c ->
        let per = extents / threads in
        for i = 0 to per - 1 do
          let lba = ((th * per) + i) * extent_blocks in
          match Runtime.Client.write_block c ~mount ~lba ~bytes:4096 with
          | Ok _ -> ()
          | Error _ -> incr failures
        done;
        read_loop th c ops 7919);
    (* Script leg nvme2 offline for 5 ms, read through the loss. *)
    let from_ns = Platform.now platform +. 100_000.0 in
    let until_ns = from_ns +. 5_000_000.0 in
    Device.Device.set_fault_plan
      (Platform.device_by_name platform "nvme2")
      (Sim.Fault.create
         ~script:[ Sim.Fault.Offline { from_ns; until_ns; queue = None } ]
         ~seed ());
    run_phase (fun th c ->
        Sim.Engine.wait (from_ns +. 10_000.0 -. Sim.Machine.now machine);
        read_loop th c ops 104729);
    (* The leg returns; read until the resilver finishes. *)
    let m =
      match
        Core.Registry.find (Runtime.Runtime.registry (Platform.runtime platform)) "lvm0"
      with
      | Some m -> m
      | None -> assert false
    in
    run_phase (fun th c ->
        let now () = Sim.Machine.now machine in
        if until_ns +. 10_000.0 > now () then
          Sim.Engine.wait (until_ns +. 10_000.0 -. now ());
        let guard = ref 0 in
        while Mods.Lab_lvm.rebuild_frac m < 1.0 && !guard < 200_000 do
          incr guard;
          read_loop th c 1 15485863;
          Sim.Engine.wait 20_000.0
        done);
    let counters = Mods.Lab_lvm.counters m in
    let ops_list = Mods.Lab_lvm.journal_ops m in
    let vg = Mods.Lab_lvm.vg m in
    let replayed =
      Mods.Lab_lvm.Meta.replay ~nlegs:vg.Mods.Lab_lvm.Meta.nlegs
        ~extents_per_leg:vg.Mods.Lab_lvm.Meta.extents_per_leg ops_list
    in
    Printf.printf
      "lvm: RAID1 over [nvme, nvme2], %d x 1 MiB extents, %d reads/thread x %d threads, seed %#x\n"
      extents ops threads seed;
    Printf.printf "  legs          %s\n"
      (String.concat ", "
         (List.map (fun (n, s) -> n ^ "=" ^ s) (Mods.Lab_lvm.leg_states m)));
    print_counter_row "mirror" (List.filter (fun (k, _) -> k <> "rebuild_copied_bytes") counters);
    Printf.printf "  rebuild       frac %.2f, %d bytes resilvered at <= %.0f MB/s\n"
      (Mods.Lab_lvm.rebuild_frac m)
      (try List.assoc "rebuild_copied_bytes" counters with Not_found -> 0)
      rate;
    Printf.printf "  journal       %d redo records; replay is %s and %s the live volume group\n"
      (List.length ops_list)
      (if Mods.Lab_lvm.Meta.consistent replayed then "consistent" else "INCONSISTENT")
      (if Mods.Lab_lvm.Meta.equal replayed vg then "matches" else "DOES NOT match");
    Printf.printf "  failures      %d reads/writes surfaced to the application\n" !failures;
    if journal then
      List.iter
        (fun op -> Printf.printf "    %s\n" (Mods.Lab_lvm.Meta.op_to_string op))
        ops_list
  in
  Cmd.v
    (Cmd.info "lvm"
       ~doc:"Mount a mirrored volume, script one leg offline mid-run, and report degraded-mode and rebuild counters")
    Term.(const run $ extents $ ops $ threads $ seed $ rate $ journal)

(* ---------------- cache ---------------- *)

let cache_stack_spec ~policy ~capacity_mb ~shards ~readahead =
  Printf.sprintf
    {|
mount: "blk::/cache"
rules:
  exec_mode: async
dag:
  - uuid: cache0
    mod: %s
    attrs:
      capacity_mb: %d
      shards: %d
      readahead: %b
    outputs: [drv0]
  - uuid: drv0
    mod: kernel_driver
|}
    policy capacity_mb shards readahead

let cache_cmd =
  let policy =
    Arg.(value & opt (enum [ ("lru", "lru_cache"); ("arc", "arc_cache") ]) "lru_cache"
         & info [ "policy" ] ~docv:"POLICY" ~doc:"replacement policy: $(b,lru) or $(b,arc)")
  in
  let capacity_mb =
    Arg.(value & opt int 4 & info [ "capacity-mb" ] ~doc:"cache capacity in MiB")
  in
  let shards = Arg.(value & opt int 4 & info [ "shards" ] ~doc:"independent cache shards") in
  let readahead = Arg.(value & flag & info [ "readahead" ] ~doc:"enable sequential readahead") in
  let ops = Arg.(value & opt int 2000 & info [ "ops" ] ~doc:"block ops per thread") in
  let threads = Arg.(value & opt int 4 & info [ "threads" ] ~doc:"client threads (one stream each)") in
  let write_pct =
    Arg.(value & opt int 25 & info [ "write-pct" ] ~doc:"percentage of ops that are writes (0-100)")
  in
  let seed = Arg.(value & opt int 0xC0FFEE & info [ "seed" ] ~doc:"simulation seed") in
  let run policy capacity_mb shards readahead ops threads write_pct seed =
    let write_pct = Stdlib.max 0 (Stdlib.min 100 write_pct) in
    let platform = Platform.boot ~nworkers:4 ~seed () in
    (match
       Platform.mount platform
         (cache_stack_spec ~policy ~capacity_mb ~shards ~readahead)
     with
    | Ok _ -> ()
    | Error e ->
        Printf.eprintf "mount error: %s\n" e;
        exit 1);
    let machine = Platform.machine platform in
    let lat = Sim.Stats.create () in
    let failed = ref 0 in
    Platform.go platform (fun () ->
        let finished = ref 0 in
        Sim.Engine.suspend (fun resume ->
            for th = 0 to threads - 1 do
              Sim.Engine.spawn machine.Sim.Machine.engine (fun () ->
                  let c = Platform.client platform ~thread:th () in
                  (* Per-thread sequential streams in disjoint page
                     regions: reads from the base, writes from the
                     upper half. *)
                  let rpage = ref (th * 1_000_000) in
                  let wpage = ref ((th * 1_000_000) + 500_000) in
                  for i = 1 to ops do
                    let t0 = Sim.Machine.now machine in
                    let r =
                      if write_pct > 0 && i * write_pct mod 100 < write_pct then begin
                        let lba = !wpage in
                        incr wpage;
                        Runtime.Client.write_block c ~stream:th ~mount:"blk::/cache"
                          ~lba ~bytes:4096
                      end
                      else begin
                        let lba = !rpage in
                        incr rpage;
                        Runtime.Client.read_block c ~stream:th ~mount:"blk::/cache"
                          ~lba ~bytes:4096
                      end
                    in
                    match r with
                    | Ok _ -> Sim.Stats.add lat (Sim.Machine.now machine -. t0)
                    | Error _ -> incr failed
                  done;
                  incr finished;
                  if !finished = threads then resume ())
            done));
    let elapsed = Platform.now platform in
    let total = ops * threads in
    let rt = Platform.runtime platform in
    Printf.printf
      "cache workload: %d sequential 4 KiB ops (%d%% writes), %s capacity=%d MiB shards=%d readahead=%b seed=%#x\n"
      total write_pct policy capacity_mb shards readahead seed;
    Printf.printf "  throughput    %.1f kIOPS (%.2f ms simulated)\n"
      (float_of_int total /. (elapsed /. 1e9) /. 1000.0)
      (elapsed /. 1e6);
    Printf.printf "  latency       p50 %.1f us  p99 %.1f us\n"
      (Sim.Stats.percentile lat 50.0 /. 1e3)
      (Sim.Stats.percentile lat 99.0 /. 1e3);
    if !failed > 0 then
      Printf.printf "  failed        %d of %d surfaced to the application\n" !failed total;
    (match Core.Registry.find (Runtime.Runtime.registry rt) "cache0" with
    | None -> ()
    | Some m ->
        let counters, shard_counters =
          if policy = "arc_cache" then
            (Mods.Arc_cache.counter_list m, Mods.Arc_cache.shard_counter_list m)
          else
            (Mods.Lru_cache.counter_list m, Mods.Lru_cache.shard_counter_list m)
        in
        print_counter_row "cache" counters;
        print_counter_row "per-shard" shard_counters)
  in
  Cmd.v
    (Cmd.info "cache"
       ~doc:"Drive sequential per-thread streams through a cache stack and report hit/readahead/write-back counters")
    Term.(const run $ policy $ capacity_mb $ shards $ readahead $ ops $ threads $ write_pct $ seed)

(* ---------------- metrics / trace ---------------- *)

(* Canned three-stage observability stack: cache -> merge scheduler ->
   kernel driver, so the registry and tracer have every instrument
   class to show. *)
let obs_stack_spec =
  {|
mount: "blk::/obs"
rules:
  exec_mode: async
dag:
  - uuid: cache0
    mod: lru_cache
    attrs:
      capacity_mb: 4
      shards: 2
    outputs: [sched0]
  - uuid: sched0
    mod: blkswitch_sched
    outputs: [drv0]
  - uuid: drv0
    mod: kernel_driver
|}

(* Mixed 4 KiB workload (1-in-4 writes) over per-thread sequential
   streams; enough to exercise cache hits/misses, merges, and the
   device path. *)
let drive_obs_workload platform ~ops ~threads =
  (match Platform.mount platform obs_stack_spec with
  | Ok _ -> ()
  | Error e ->
      Printf.eprintf "mount error: %s\n" e;
      exit 1);
  let machine = Platform.machine platform in
  Platform.go platform (fun () ->
      let finished = ref 0 in
      Sim.Engine.suspend (fun resume ->
          for th = 0 to threads - 1 do
            Sim.Engine.spawn machine.Sim.Machine.engine (fun () ->
                let c = Platform.client platform ~thread:th () in
                let page = ref (th * 1_000_000) in
                for i = 1 to ops do
                  let lba = !page in
                  incr page;
                  if i mod 4 = 0 then
                    ignore
                      (Runtime.Client.write_block c ~stream:th
                         ~mount:"blk::/obs" ~lba ~bytes:4096)
                  else
                    ignore
                      (Runtime.Client.read_block c ~stream:th
                         ~mount:"blk::/obs" ~lba ~bytes:4096)
                done;
                incr finished;
                if !finished = threads then resume ())
          done))

let conf_pos =
  Arg.(
    value
    & pos 0 (some file) None
    & info [] ~docv:"CONF"
        ~doc:
          "Runtime configuration YAML (workers, trace_sample, trace_path, \
           metrics_path, profile_period_us, profile_path)")

let metrics_cmd =
  let ops = Arg.(value & opt int 2000 & info [ "ops" ] ~doc:"block ops per thread") in
  let threads = Arg.(value & opt int 4 & info [ "threads" ] ~doc:"client threads") in
  let seed = Arg.(value & opt int 0xC0FFEE & info [ "seed" ] ~doc:"simulation seed") in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"PATH"
             ~doc:"metrics snapshot output path (overrides the config's metrics_path)")
  in
  let run conf ops threads seed out =
    let cfg = parse_run_config conf in
    let platform =
      Platform.boot ~nworkers:cfg.Runtime.Runtime.nworkers ~seed
        ~trace_sample:cfg.Runtime.Runtime.trace_sample ()
    in
    drive_obs_workload platform ~ops ~threads;
    let fmt_value = function
      | Obs.Metrics.V_counter n -> string_of_int n
      | Obs.Metrics.V_gauge g -> Printf.sprintf "%.1f" g
      | Obs.Metrics.V_histogram h ->
          Printf.sprintf "count=%d p50=%.0f ns p99=%.0f ns p999=%.0f ns"
            h.Obs.Metrics.hs_count h.Obs.Metrics.hs_p50 h.Obs.Metrics.hs_p99
            h.Obs.Metrics.hs_p999
    in
    let rows =
      List.map
        (fun (k, v) -> (k, fmt_value v))
        (Obs.Metrics.to_list (Platform.metrics platform))
    in
    Printf.printf "%d instruments after %d ops x %d threads:\n" (List.length rows)
      ops threads;
    print_value_table rows;
    let path =
      match out with
      | Some p -> p
      | None ->
          Option.value cfg.Runtime.Runtime.metrics_path
            ~default:"out/metrics.jsonl"
    in
    Platform.export ~metrics_path:path platform;
    Printf.printf "wrote %s\n" path
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Drive a canned cache/sched/driver stack and dump the unified metrics registry")
    Term.(const run $ conf_pos $ ops $ threads $ seed $ out)

let trace_cmd =
  let ops = Arg.(value & opt int 500 & info [ "ops" ] ~doc:"block ops per thread") in
  let threads = Arg.(value & opt int 2 & info [ "threads" ] ~doc:"client threads") in
  let seed = Arg.(value & opt int 0xC0FFEE & info [ "seed" ] ~doc:"simulation seed") in
  let sample =
    Arg.(value & opt int 0
         & info [ "sample" ]
             ~doc:"trace 1-in-N requests (overrides the config's trace_sample; defaults to 1)")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"PATH"
             ~doc:"Chrome trace output path (overrides the config's trace_path)")
  in
  let run conf ops threads seed sample out =
    let cfg = parse_run_config conf in
    let sample =
      if sample > 0 then sample
      else if cfg.Runtime.Runtime.trace_sample > 0 then
        cfg.Runtime.Runtime.trace_sample
      else 1
    in
    let platform =
      Platform.boot ~nworkers:cfg.Runtime.Runtime.nworkers ~seed
        ~trace_sample:sample ()
    in
    drive_obs_workload platform ~ops ~threads;
    let evs = Obs.Trace.events (Platform.tracer platform) in
    let requests =
      List.length (List.filter (fun e -> e.Obs.Trace.ev_cat = "request") evs)
    in
    Printf.printf "traced %d events from %d requests (1-in-%d sampling):\n"
      (List.length evs) requests sample;
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun e ->
        let key = e.Obs.Trace.ev_cat ^ ":" ^ e.Obs.Trace.ev_name in
        let c, d = Option.value (Hashtbl.find_opt tbl key) ~default:(0, 0.0) in
        Hashtbl.replace tbl key (c + 1, d +. e.Obs.Trace.ev_dur))
      evs;
    let rows =
      List.sort compare
        (Hashtbl.fold
           (fun key (c, d) acc ->
             let mean = if c = 0 then 0.0 else d /. float_of_int c in
             (key, Printf.sprintf "%5d  mean %.0f ns" c mean) :: acc)
           tbl [])
    in
    print_value_table rows;
    let path =
      match out with
      | Some p -> p
      | None ->
          Option.value cfg.Runtime.Runtime.trace_path ~default:"out/trace.json"
    in
    Platform.export ~trace_path:path platform;
    Printf.printf "wrote %s (load in Perfetto / chrome://tracing)\n" path
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Trace sampled requests through a canned stack and export Chrome trace-event JSON")
    Term.(const run $ conf_pos $ ops $ threads $ seed $ sample $ out)

(* ---------------- exemplars / blackbox ---------------- *)

let exemplars_cmd =
  let ops = Arg.(value & opt int 2000 & info [ "ops" ] ~doc:"block ops per thread") in
  let threads = Arg.(value & opt int 4 & info [ "threads" ] ~doc:"client threads") in
  let seed = Arg.(value & opt int 0xC0FFEE & info [ "seed" ] ~doc:"simulation seed") in
  let k = Arg.(value & opt int 8 & info [ "k" ] ~doc:"exemplar slots (slowest K requests kept)") in
  let tail_us =
    Arg.(value & opt float 0.0
         & info [ "tail-us" ]
             ~doc:"fixed promotion threshold in microseconds (0 = adapt to the live client p99)")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"PATH"
             ~doc:"exemplar store output path (overrides the config's exemplar_path)")
  in
  let run conf ops threads seed k tail_us out =
    let cfg = parse_run_config conf in
    let platform =
      Platform.boot ~nworkers:cfg.Runtime.Runtime.nworkers ~seed ~exemplar_k:k
        ~exemplar_tail_us:tail_us ()
    in
    drive_obs_workload platform ~ops ~threads;
    (match Runtime.Runtime.exemplars (Platform.runtime platform) with
    | None -> Printf.printf "exemplar store disabled (k = 0)\n"
    | Some store ->
        Printf.printf
          "exemplars: %d stored of %d offered (%d promoted, %d recycled, %d evicted), threshold %.0f ns\n"
          (Obs.Exemplar.stored store)
          (Obs.Exemplar.offered store)
          (Obs.Exemplar.promoted store)
          (Obs.Exemplar.recycled store)
          (Obs.Exemplar.evicted store)
          (Obs.Exemplar.threshold_ns store);
        let rows =
          List.map
            (fun v ->
              let stages =
                List.filter
                  (fun s -> s.Obs.Exemplar.s_cat = "stage")
                  v.Obs.Exemplar.v_stages
              in
              let worst =
                List.fold_left
                  (fun (wn, wd) s ->
                    let d = s.Obs.Exemplar.s_t1 -. s.Obs.Exemplar.s_t0 in
                    if d > wd then (s.Obs.Exemplar.s_name, d) else (wn, wd))
                  ("-", 0.0) stages
              in
              ( Printf.sprintf "req %d" v.Obs.Exemplar.v_id,
                Printf.sprintf "%8.0f ns across %d stages, worst %s (%.0f ns)"
                  v.Obs.Exemplar.v_latency (List.length stages) (fst worst)
                  (snd worst) ))
            (Obs.Exemplar.dump store)
        in
        print_value_table rows);
    let path =
      match out with
      | Some p -> p
      | None ->
          Option.value cfg.Runtime.Runtime.exemplar_path
            ~default:"out/exemplars.json"
    in
    Platform.export ~exemplar_path:path platform;
    Printf.printf "wrote %s\n" path
  in
  Cmd.v
    (Cmd.info "exemplars"
       ~doc:"Capture the slowest requests' full stage anatomy through a canned stack and export the tail-exemplar store")
    Term.(const run $ conf_pos $ ops $ threads $ seed $ k $ tail_us $ out)

let blackbox_cmd =
  let ops = Arg.(value & opt int 2000 & info [ "ops" ] ~doc:"block ops per thread") in
  let threads = Arg.(value & opt int 4 & info [ "threads" ] ~doc:"client threads") in
  let seed = Arg.(value & opt int 0xC0FFEE & info [ "seed" ] ~doc:"simulation seed") in
  let cap = Arg.(value & opt int 512 & info [ "cap" ] ~doc:"flight-recorder ring capacity (events)") in
  let offline_ms =
    Arg.(value & opt float 2.0
         & info [ "offline-ms" ]
             ~doc:"script the device offline for this long mid-run (0 = no fault)")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"PATH"
             ~doc:"black-box dump output path (overrides the config's blackbox_path)")
  in
  let run conf ops threads seed cap offline_ms out =
    let cfg = parse_run_config conf in
    let fault_script =
      if offline_ms <= 0.0 then None
      else
        (* Mid-run outage: the workload below runs well past 1 ms of
           virtual time, so requests hit the offline window and surface
           ENODEV — exactly the trigger the recorder is for. *)
        Some
          [
            Sim.Fault.Offline
              {
                from_ns = 1_000_000.0;
                until_ns = 1_000_000.0 +. (offline_ms *. 1e6);
                queue = None;
              };
          ]
    in
    let platform =
      Platform.boot ~nworkers:cfg.Runtime.Runtime.nworkers ~seed
        ~blackbox_cap:cap ?fault_script ()
    in
    drive_obs_workload platform ~ops ~threads;
    (match Runtime.Runtime.blackbox (Platform.runtime platform) with
    | None -> Printf.printf "flight recorder disabled (cap = 0)\n"
    | Some bb ->
        Printf.printf
          "flight recorder: %d events through a %d-slot ring, %d triggers, %d dumps retained\n"
          (Obs.Flightrec.recorded bb)
          (Obs.Flightrec.cap bb)
          (Obs.Flightrec.triggers bb)
          (List.length (Obs.Flightrec.dumps bb));
        let tbl = Hashtbl.create 16 in
        List.iter
          (fun e ->
            let c =
              Option.value (Hashtbl.find_opt tbl e.Obs.Flightrec.e_kind)
                ~default:0
            in
            Hashtbl.replace tbl e.Obs.Flightrec.e_kind (c + 1))
          (Obs.Flightrec.events bb);
        let rows =
          List.sort compare
            (Hashtbl.fold
               (fun k c acc -> (k, Printf.sprintf "%5d in ring" c) :: acc)
               tbl [])
        in
        print_value_table rows);
    let path =
      match out with
      | Some p -> p
      | None ->
          Option.value cfg.Runtime.Runtime.blackbox_path
            ~default:"out/blackbox.json"
    in
    Platform.export ~blackbox_path:path platform;
    Printf.printf "wrote %s\n" path
  in
  Cmd.v
    (Cmd.info "blackbox"
       ~doc:"Run the always-on flight recorder through a scripted device outage and export the triggered black-box dumps")
    Term.(const run $ conf_pos $ ops $ threads $ seed $ cap $ offline_ms $ out)

(* ---------------- profile / top ---------------- *)

let profile_cmd =
  let ops = Arg.(value & opt int 500 & info [ "ops" ] ~doc:"block ops per thread") in
  let threads = Arg.(value & opt int 2 & info [ "threads" ] ~doc:"client threads") in
  let seed = Arg.(value & opt int 0xC0FFEE & info [ "seed" ] ~doc:"simulation seed") in
  let period_us =
    Arg.(value & opt float 50.0
         & info [ "period-us" ] ~doc:"sampler period in microseconds")
  in
  let top_n =
    Arg.(value & opt int 20 & info [ "top" ] ~doc:"flamegraph rows to print")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"PATH"
             ~doc:"profile JSON output path (overrides the config's profile_path)")
  in
  let run conf ops threads seed period_us top_n out =
    let cfg = parse_run_config conf in
    let period_ns =
      if cfg.Runtime.Runtime.profile_period_ns > 0.0 then
        cfg.Runtime.Runtime.profile_period_ns
      else period_us *. 1000.0
    in
    let platform =
      Platform.boot ~nworkers:cfg.Runtime.Runtime.nworkers ~seed ~trace_sample:1
        ~profile_period:period_ns ()
    in
    drive_obs_workload platform ~ops ~threads;
    let prof =
      Obs.Profile.of_events (Obs.Trace.events (Platform.tracer platform))
    in
    Printf.printf
      "profiled %d requests (p50 %.1f us, p99 %.1f us), sampler period %.1f us\n"
      prof.Obs.Profile.requests
      (prof.Obs.Profile.p50_ns /. 1e3)
      (prof.Obs.Profile.p99_ns /. 1e3)
      (period_ns /. 1e3);
    Printf.printf "hottest stacks (self time):\n";
    let by_self =
      List.sort
        (fun a b -> Float.compare b.Obs.Profile.pf_self_ns a.Obs.Profile.pf_self_ns)
        prof.Obs.Profile.nodes
    in
    let take n l = List.filteri (fun i _ -> i < n) l in
    print_value_table
      (List.map
         (fun (n : Obs.Profile.node) ->
           ( n.Obs.Profile.pf_key,
             Printf.sprintf "n=%-6d self %8.0f ns  total %8.0f ns"
               n.Obs.Profile.pf_count n.Obs.Profile.pf_self_ns
               n.Obs.Profile.pf_total_ns ))
         (take top_n by_self));
    Printf.printf "tail attribution (p50 cohort of %d vs >=p99 cohort of %d):\n"
      prof.Obs.Profile.p50_cohort prof.Obs.Profile.tail_cohort;
    print_value_table
      (List.map
         (fun (r : Obs.Profile.tail_row) ->
           ( r.Obs.Profile.tr_stage,
             Printf.sprintf "p50 mean %8.0f ns   tail mean %8.0f ns   x%.2f"
               r.Obs.Profile.tr_p50_mean_ns r.Obs.Profile.tr_tail_mean_ns
               (if r.Obs.Profile.tr_p50_mean_ns > 0.0 then
                  r.Obs.Profile.tr_tail_mean_ns /. r.Obs.Profile.tr_p50_mean_ns
                else 0.0) ))
         prof.Obs.Profile.tail);
    let path =
      match out with
      | Some p -> p
      | None ->
          Option.value cfg.Runtime.Runtime.profile_path
            ~default:"out/profile.json"
    in
    Platform.export ~profile_path:path platform;
    Printf.printf "wrote %s\n" path
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Continuously profile a canned stack: span-based flamegraph, tail \
          attribution, and the sampler timeline exported as profile JSON")
    Term.(const run $ conf_pos $ ops $ threads $ seed $ period_us $ top_n $ out)

let top_cmd =
  let ops = Arg.(value & opt int 500 & info [ "ops" ] ~doc:"block ops per thread") in
  let threads = Arg.(value & opt int 2 & info [ "threads" ] ~doc:"client threads") in
  let seed = Arg.(value & opt int 0xC0FFEE & info [ "seed" ] ~doc:"simulation seed") in
  let period_us =
    Arg.(value & opt float 50.0
         & info [ "period-us" ] ~doc:"sampler period in microseconds")
  in
  let run conf ops threads seed period_us =
    let cfg = parse_run_config conf in
    let period_ns =
      if cfg.Runtime.Runtime.profile_period_ns > 0.0 then
        cfg.Runtime.Runtime.profile_period_ns
      else period_us *. 1000.0
    in
    let platform =
      Platform.boot ~nworkers:cfg.Runtime.Runtime.nworkers ~seed
        ~profile_period:period_ns ()
    in
    drive_obs_workload platform ~ops ~threads;
    match Runtime.Runtime.timeseries (Platform.runtime platform) with
    | None -> prerr_endline "profiling sampler not enabled"; exit 1
    | Some ts ->
        Printf.printf "%d series, %d ticks at %.1f us:\n"
          (List.length (Obs.Timeseries.series_names ts))
          (Obs.Timeseries.ticks ts) (period_ns /. 1e3);
        print_value_table
          (List.map
             (fun (s : Obs.Timeseries.stat) ->
               ( s.Obs.Timeseries.st_name,
                 Printf.sprintf "mean %10.2f   max %10.2f   last %10.2f"
                   s.Obs.Timeseries.st_mean s.Obs.Timeseries.st_max
                   s.Obs.Timeseries.st_last ))
             (Obs.Timeseries.stats ts))
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Drive a canned stack with the continuous-profiling sampler on and \
          summarize every utilization/occupancy series")
    Term.(const run $ conf_pos $ ops $ threads $ seed $ period_us)

(* ---------------- mods ---------------- *)

let mods_cmd =
  let run () =
    let platform = Platform.boot ~devices:[ Device.Profile.Nvme; Device.Profile.Pmem ] () in
    let reg = Runtime.Runtime.registry (Platform.runtime platform) in
    let names = List.sort compare (Core.Registry.factory_names reg) in
    Printf.printf "%d installed LabMod implementations:\n" (List.length names);
    List.iter
      (fun name ->
        match Core.Registry.find_factory reg name with
        | Some f ->
            let probe = f ~uuid:"__probe__" ~attrs:[] in
            Printf.printf "  %-24s %s\n" name
              (Core.Labmod.mod_type_name probe.Core.Labmod.mod_type)
        | None -> ())
      names
  in
  Cmd.v (Cmd.info "mods" ~doc:"List the stock LabMod implementations") Term.(const run $ const ())

(* ---------------- qos ---------------- *)

(* Multi-tenant QoS demo: N metered tenants driving 16 KiB reads
   (latency-class) share a blkswitch_sched stack with an optional
   misbehaving tenant hammering 20 KiB writes through the DRR window
   under a token-bucket cap. Prints the per-tenant QoS report the
   runtime keeps: admission, dispatch class split, and latency. *)

let qos_stack_spec =
  {|
mount: "blk::/qos"
rules:
  exec_mode: async
dag:
  - uuid: sched0
    mod: blkswitch_sched
    outputs: [drv0]
  - uuid: drv0
    mod: kernel_driver
|}

let qos_cmd =
  let tenants = Arg.(value & opt int 8 & info [ "tenants" ] ~doc:"well-behaved tenants") in
  let ops = Arg.(value & opt int 200 & info [ "ops" ] ~doc:"reads per tenant") in
  let noisy = Arg.(value & flag & info [ "noisy" ] ~doc:"add a misbehaving bulk tenant (capped at 700 MB/s, qcap 32)") in
  let rate = Arg.(value & opt float 700.0 & info [ "rate" ] ~doc:"noisy tenant's token-bucket rate (MB/s)") in
  let seed = Arg.(value & opt int 0xC0FFEE & info [ "seed" ] ~doc:"simulation seed") in
  let run tenants ops noisy rate seed =
    let n = Stdlib.max 1 tenants in
    let platform = Platform.boot ~nworkers:4 ~seed () in
    (match Platform.mount platform qos_stack_spec with
    | Ok _ -> ()
    | Error e ->
        Printf.eprintf "mount error: %s\n" e;
        exit 1);
    let machine = Platform.machine platform in
    let eng = machine.Sim.Machine.engine in
    for i = 0 to n - 1 do
      ignore (Platform.register_tenant platform ~uid:(2000 + i) ())
    done;
    if noisy then
      ignore
        (Platform.register_tenant platform ~uid:999 ~rate_mbps:rate
           ~burst_kb:64 ~qcap:32 ());
    let stop = ref false in
    Platform.go platform (fun () ->
        let finished = ref 0 in
        Sim.Engine.suspend (fun resume ->
            for i = 0 to n - 1 do
              Sim.Engine.spawn eng (fun () ->
                  let c =
                    Platform.client platform ~uid:(2000 + i) ~thread:(i mod 16) ()
                  in
                  Sim.Engine.wait (float_of_int i *. 10_000.0);
                  for k = 0 to ops - 1 do
                    ignore
                      (Runtime.Client.read_block c ~mount:"blk::/qos"
                         ~lba:((i * 16384) + (k * 32))
                         ~bytes:16384);
                    Sim.Engine.wait (10_000.0 *. float_of_int n)
                  done;
                  incr finished;
                  if !finished = n then begin
                    stop := true;
                    resume ()
                  end)
            done;
            if noisy then
              for j = 0 to 31 do
                Sim.Engine.spawn eng (fun () ->
                    let c =
                      Platform.client platform ~uid:999 ~thread:(16 + (j mod 4)) ()
                    in
                    let lba = ref (100_000_000 + (j * 1_000_000)) in
                    while not !stop do
                      ignore
                        (Runtime.Client.write_block c ~mount:"blk::/qos"
                           ~lba:!lba ~bytes:20480);
                      lba := !lba + 40
                    done)
              done));
    Printf.printf "QoS report after %.2f ms simulated (%d tenants%s):\n"
      (Platform.now platform /. 1e6)
      n
      (if noisy then " + 1 noisy" else "");
    let report uid label =
      match Platform.tenant_for platform ~uid with
      | None -> ()
      | Some tn ->
          let open Ipc.Tenant in
          print_counter_row label
            [
              ("ops", ops_done tn);
              ("KiB", bytes_done tn / 1024);
              ("bypass", bypassed tn);
              ("drr", dispatched tn);
              ("throttled", throttled tn);
            ]
            ~suffix:
              (Printf.sprintf ", p99=%.1fus"
                 (Obs.Metrics.p99 (latency tn) /. 1e3))
    in
    for i = 0 to Stdlib.min (n - 1) 7 do
      report (2000 + i) (Printf.sprintf "tenant %d" (2000 + i))
    done;
    if n > 8 then Printf.printf "  ... %d more well-behaved tenants\n" (n - 8);
    if noisy then report 999 "noisy 999"
  in
  Cmd.v
    (Cmd.info "qos"
       ~doc:"Drive metered tenants through the DRR-scheduled stack and print the per-tenant QoS report")
    Term.(const run $ tenants $ ops $ noisy $ rate $ seed)

(* ---------------- load ---------------- *)

(* Open-loop traffic report: fire a deterministic arrival process at
   the stack from Engine timers (offered load independent of completion
   rate) and print offered vs achieved rate, injection lag, and the
   CO-corrected vs naive latency percentiles side by side. Past the
   saturation knee the two columns diverge — that gap is the latency a
   closed-loop benchmark silently hides. *)

let load_stack_spec =
  {|
mount: "blk::/load"
rules:
  exec_mode: async
dag:
  - uuid: sched0
    mod: blkswitch_sched
    outputs: [drv0]
  - uuid: drv0
    mod: kernel_driver
|}

let load_cmd =
  let rate = Arg.(value & opt float 100.0 & info [ "rate" ] ~doc:"offered arrival rate (kops/s)") in
  let total = Arg.(value & opt int 2000 & info [ "total" ] ~doc:"arrivals to generate") in
  let process =
    Arg.(value & opt string "poisson"
         & info [ "process" ] ~doc:"arrival process: poisson | onoff | diurnal")
  in
  let injectors = Arg.(value & opt int 16 & info [ "injectors" ] ~doc:"concurrent open-loop senders") in
  let bytes = Arg.(value & opt int 4096 & info [ "bytes" ] ~doc:"read size per request") in
  let seed = Arg.(value & opt int 0x10AD & info [ "seed" ] ~doc:"simulation seed") in
  let slo_p99 =
    Arg.(value & opt float 0.0
         & info [ "slo-p99" ] ~doc:"SLO p99 target in us (0 = no SLO tracking)")
  in
  let run rate total process injectors bytes seed slo_p99 =
    let rate_ops_s = rate *. 1e3 in
    let proc =
      match process with
      | "poisson" -> Workloads.Load.Poisson { rate_ops_s }
      | "onoff" ->
          (* 60/40 duty cycle, 100µs windows: same nominal rate, bursty. *)
          Workloads.Load.On_off
            { rate_ops_s = rate_ops_s /. 0.6; on_ns = 60_000.0; off_ns = 40_000.0 }
      | "diurnal" ->
          Workloads.Load.Diurnal
            { mean_ops_s = rate_ops_s; amplitude = 0.5; period_ns = 1e7 }
      | p ->
          Printf.eprintf "unknown process %S (poisson | onoff | diurnal)\n" p;
          exit 1
    in
    let injectors = Stdlib.max 1 injectors in
    let platform =
      Platform.boot ~nworkers:4 ~worker_max_inflight:32 ~seed
        ~slo_p99_target_us:slo_p99 ()
    in
    (match Platform.mount platform load_stack_spec with
    | Ok _ -> ()
    | Error e ->
        Printf.eprintf "mount error: %s\n" e;
        exit 1);
    let machine = Platform.machine platform in
    let res =
      Platform.go platform (fun () ->
          let clients =
            Array.init injectors (fun i ->
                Platform.client platform ~thread:(i mod 16) ())
          in
          let next = ref 0 in
          let spec =
            { Workloads.Load.default_spec with proc; seed; total; injectors }
          in
          Workloads.Load.run machine spec ~submit:(fun ~injector ~scheduled ->
              let lba = !next mod 131072 * 8 in
              incr next;
              match
                Runtime.Client.read_block clients.(injector)
                  ~scheduled_at:scheduled ~mount:"blk::/load" ~lba ~bytes
              with
              | Ok _ -> true
              | Error _ -> false))
    in
    let r = res.Workloads.Load.recorder in
    Printf.printf "open-loop %s load, %d arrivals, %d injectors, %d B reads:\n"
      process res.Workloads.Load.generated injectors bytes;
    print_value_table
      [
        ("offered", Printf.sprintf "%.1f kops/s" (res.Workloads.Load.offered_ops_s /. 1e3));
        ("achieved", Printf.sprintf "%.1f kops/s" (res.Workloads.Load.achieved_ops_s /. 1e3));
        ( "completed",
          Printf.sprintf "%d ok, %d failed, %d dropped, %d late"
            res.Workloads.Load.succeeded
            (res.Workloads.Load.completed - res.Workloads.Load.succeeded)
            res.Workloads.Load.dropped res.Workloads.Load.late );
        ( "inject lag",
          Printf.sprintf "mean %.1f us, max %.1f us"
            (Obs.Latrec.lag_mean_ns r /. 1e3)
            (Obs.Latrec.lag_max_ns r /. 1e3) );
        ("elapsed", Printf.sprintf "%.2f ms" (res.Workloads.Load.elapsed_ns /. 1e6));
      ];
    Printf.printf "  latency        CO-corrected      naive (closed-loop view)\n";
    List.iter
      (fun (label, q) ->
        let c = Obs.Latrec.corrected_quantile r q /. 1e3 in
        let nv = Obs.Latrec.naive_quantile r q /. 1e3 in
        Printf.printf "  %-9s %10.1f us %15.1f us   (%.2fx)\n" label c nv
          (c /. Stdlib.max 1e-9 nv))
      [ ("p50", 0.50); ("p90", 0.90); ("p99", 0.99); ("p99.9", 0.999) ];
    if slo_p99 > 0.0 then
      match Runtime.Runtime.slo (Platform.runtime platform) with
      | None -> ()
      | Some slo ->
          let open Obs.Latrec.Slo in
          Printf.printf
            "  SLO (p99 <= %.0f us): budget remaining %.1f%%, burn rate %.2fx\n"
            slo_p99
            (100.0 *. budget_remaining slo)
            (burn_rate slo)
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:"Fire an open-loop arrival schedule at a stack and report CO-corrected vs naive latency")
    Term.(const run $ rate $ total $ process $ injectors $ bytes $ seed $ slo_p99)

let () =
  let info =
    Cmd.info "labstor_cli" ~version:"1.0.0"
      ~doc:"LabStor platform utilities (simulated deployment)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            validate_cmd; run_cmd; faults_cmd; lvm_cmd; cache_cmd; metrics_cmd;
            trace_cmd; exemplars_cmd; blackbox_cmd; profile_cmd; top_cmd;
            mods_cmd; qos_cmd; load_cmd;
          ]))
